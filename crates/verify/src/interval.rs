//! The abstract domain: closed integer intervals.
//!
//! Every quantity the kernels compute — u8 codes, zero-point-subtracted
//! products, `i32` accumulator chunks, `i64` flushed totals, fixed-point
//! requantization inputs — is abstracted as a closed interval `[lo, hi]`.
//! Endpoints are `i128`, two widths above the widest machine value the
//! kernels hold (`i64`), so the *analysis itself* can never overflow: a
//! forged graph whose true range exceeds `i64` widens the interval instead
//! of wrapping, and the `fits_*` predicates then report the violation.

use mixq_quant::{BitWidth, FixedPointMultiplier};

/// A closed integer interval `[lo, hi]` over `i128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    lo: i128,
    hi: i128,
}

// `add`/`sub`/`mul` deliberately take self by value like the std ops but
// stay inherent methods: the transfer functions read better chained
// (`a.add(b).mul_const(k)`) and operator sugar would hide that these are
// abstract-domain transformers, not exact arithmetic.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The point interval `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0, hi: 0 };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i128, hi: i128) -> Self {
        assert!(lo <= hi, "interval endpoints out of order: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The point interval `[v, v]`.
    pub fn point(v: i128) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The code range of a `Q`-bit unsigned tensor: `[0, 2^Q − 1]`.
    pub fn code(bits: BitWidth) -> Self {
        Interval::new(0, bits.qmax() as i128)
    }

    /// Lower endpoint.
    pub fn lo(&self) -> i128 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> i128 {
        self.hi
    }

    /// Interval sum `[a.lo + b.lo, a.hi + b.hi]`.
    pub fn add(self, o: Interval) -> Interval {
        Interval::new(self.lo + o.lo, self.hi + o.hi)
    }

    /// Interval difference `a − b = [a.lo − b.hi, a.hi − b.lo]`.
    pub fn sub(self, o: Interval) -> Interval {
        Interval::new(self.lo - o.hi, self.hi - o.lo)
    }

    /// Interval product: the hull of the four endpoint products.
    pub fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval::new(
            c.iter().copied().min().expect("four candidates"),
            c.iter().copied().max().expect("four candidates"),
        )
    }

    /// Shifts both endpoints by a constant.
    pub fn add_const(self, v: i128) -> Interval {
        Interval::new(self.lo + v, self.hi + v)
    }

    /// Scales by a constant (which may be negative, swapping endpoints).
    pub fn mul_const(self, v: i128) -> Interval {
        if v >= 0 {
            Interval::new(self.lo * v, self.hi * v)
        } else {
            Interval::new(self.hi * v, self.lo * v)
        }
    }

    /// The sum of `n` independent draws from this interval.
    pub fn sum_of(self, n: usize) -> Interval {
        self.mul_const(n as i128)
    }

    /// Smallest interval containing both.
    pub fn hull(self, o: Interval) -> Interval {
        Interval::new(self.lo.min(o.lo), self.hi.max(o.hi))
    }

    /// Whether `v` lies inside.
    pub fn contains(&self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether every value fits an `i32` — the bound the SIMD accumulator
    /// chunks and the requantizer's saturating `Φ + Bq` input must satisfy
    /// for the kernels to be exact (not merely non-UB).
    pub fn fits_i32(&self) -> bool {
        self.lo >= i32::MIN as i128 && self.hi <= i32::MAX as i128
    }

    /// Whether every value fits an `i64` — the widened flush/threshold
    /// domain.
    pub fn fits_i64(&self) -> bool {
        self.lo >= i64::MIN as i128 && self.hi <= i64::MAX as i128
    }

    /// Endpoints clamped to `i64` for compact reporting (report fields are
    /// `i64`; an interval that actually exceeds them has already raised a
    /// violation).
    pub fn clamped_i64(&self) -> (i64, i64) {
        (
            self.lo.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
            self.hi.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
        )
    }

    /// Image of the interval under a fixed-point multiplier's `apply`.
    ///
    /// `FixedPointMultiplier::apply` is monotone non-decreasing for
    /// non-negative mantissas and non-increasing for negative ones, so the
    /// image of an interval is the (possibly swapped) image of its
    /// endpoints. Inputs are clamped to `i32` first — exactly the
    /// `saturate_i32` the scalar requantizer performs.
    pub fn apply_fixed(self, m: FixedPointMultiplier) -> Interval {
        let sat = |v: i128| v.clamp(i32::MIN as i128, i32::MAX as i128) as i32;
        let a = m.apply(sat(self.lo)) as i128;
        let b = m.apply(sat(self.hi)) as i128;
        Interval::new(a.min(b), a.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_endpoints() {
        let a = Interval::new(-2, 3);
        let b = Interval::new(5, 7);
        assert_eq!(a.add(b), Interval::new(3, 10));
        assert_eq!(a.sub(b), Interval::new(-9, -2));
        assert_eq!(a.mul(b), Interval::new(-14, 21));
        assert_eq!(a.mul_const(-3), Interval::new(-9, 6));
        assert_eq!(a.sum_of(4), Interval::new(-8, 12));
        assert_eq!(a.hull(b), Interval::new(-2, 7));
    }

    #[test]
    fn code_ranges() {
        assert_eq!(Interval::code(BitWidth::W2), Interval::new(0, 3));
        assert_eq!(Interval::code(BitWidth::W8), Interval::new(0, 255));
    }

    #[test]
    fn fits_predicates() {
        assert!(Interval::new(0, i32::MAX as i128).fits_i32());
        assert!(!Interval::new(0, i32::MAX as i128 + 1).fits_i32());
        assert!(Interval::new(i64::MIN as i128, 0).fits_i64());
        assert!(!Interval::new(0, i64::MAX as i128 + 1).fits_i64());
        let (lo, hi) = Interval::new(-1, i64::MAX as i128 + 7).clamped_i64();
        assert_eq!((lo, hi), (-1, i64::MAX));
    }

    #[test]
    fn apply_fixed_is_endpoint_exact() {
        let m = FixedPointMultiplier::from_real(0.37);
        let iv = Interval::new(-1000, 1000).apply_fixed(m);
        // Spot-check containment and endpoint achievement.
        for v in [-1000i32, -1, 0, 1, 999, 1000] {
            assert!(iv.contains(m.apply(v) as i128));
        }
        assert_eq!(iv.lo(), m.apply(-1000) as i128);
        assert_eq!(iv.hi(), m.apply(1000) as i128);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_interval_rejected() {
        let _ = Interval::new(1, 0);
    }
}
