//! Machine-readable verification results.
//!
//! A [`VerifyReport`] is a list of per-node [`NodeCert`] certificates (the
//! proven bounds) plus a list of [`Violation`]s (facts the verifier could
//! *not* prove). An empty violation list means every check passed for
//! every possible input — the report is a proof object for the graph, not
//! a test over samples.

use std::fmt;

/// One fact the verifier failed to prove, with enough structure for a
/// caller (CI, the deploy pipeline) to act on it without string parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An integer intermediate can exceed its machine width for some
    /// admissible input. `stage` names the dataflow point (e.g.
    /// `"i32-chunk"`, `"depthwise-i32"`, `"requant-bias"`, `"logits"`);
    /// `(lo, hi)` is the computed interval and `bound` the width it must
    /// fit.
    AccOverflow {
        /// Node name.
        node: String,
        /// Dataflow stage inside the kernel.
        stage: &'static str,
        /// Computed interval lower bound (clamped to `i64` for display).
        lo: i64,
        /// Computed interval upper bound (clamped to `i64`).
        hi: i64,
        /// The width the value must fit (`"i32"` / `"i64"`).
        bound: &'static str,
    },
    /// A dot-product chunk handed to `gemv2` exceeds the kernel's
    /// `MAX_DOT_LEN` dispatch contract (the u16-pair SIMD cores are only
    /// proven for chunks up to this length).
    DotLengthExceedsKernel {
        /// Node name.
        node: String,
        /// Full dot length of the layer.
        k: usize,
        /// The chunk length actually handed to the kernel.
        chunk: usize,
        /// The kernel contract (`simd::MAX_DOT_LEN`).
        max: usize,
    },
    /// The layer's `RequantPlan` gate disagrees with the gate recomputed
    /// from the requantizer parameters: either the plan claims
    /// vectorizability the parameters don't support (silent wrong SIMD
    /// results) or it needlessly forces scalar (silent fallback surprise).
    PlanGateMismatch {
        /// Node name.
        node: String,
        /// What the stored plan claims.
        plan_vectorizable: bool,
        /// Why the recomputed gate disagrees.
        reason: String,
    },
    /// A threshold table is not monotone in the direction its flip flag
    /// claims — binary search over it returns codes that disagree with the
    /// linear scan.
    ThresholdNotMonotone {
        /// Node name.
        node: String,
        /// Offending output channel.
        channel: usize,
    },
    /// The liveness schedule reclaims a tensor's arena storage while a
    /// later step still reads it — the arena would alias the stale bytes
    /// with whatever tensor is allocated next.
    ScheduleAliasing {
        /// Tensor id (0 = graph input, `k + 1` = output of node `k`).
        tensor: usize,
        /// Step after which the schedule frees it.
        freed_after: usize,
        /// Step that still reads it.
        used_at: usize,
    },
    /// The terminal tensor is dropped before the end of the schedule.
    TerminalDropped {
        /// Tensor id of the terminal output.
        tensor: usize,
        /// Step after which the schedule frees it.
        freed_after: usize,
        /// Step it must survive to.
        needed_until: usize,
    },
    /// The schedule is structurally malformed (wrong length, a use before
    /// its definition, …).
    ScheduleMalformed {
        /// What is wrong.
        detail: String,
    },
    /// A node needs more transient scratch than the planned peak.
    ScratchShortfall {
        /// Node name.
        node: String,
        /// Bytes the node's selected kernel stages.
        needed_bytes: usize,
        /// Bytes the plan provisions.
        planned_bytes: usize,
    },
    /// The verifier's independent live-set walk disagrees with the
    /// graph's own `peak_ram_bytes` planner.
    RamPlanMismatch {
        /// Peak computed by the verifier's walk.
        computed: usize,
        /// Peak the graph planner reports.
        planned: usize,
    },
    /// A `QAdd`'s baked fixed-point multiplier does not realize the branch
    /// scale ratio it declares — the classic mismatched-join-scale bug.
    JoinScaleMismatch {
        /// Node name.
        node: String,
        /// Which branch (`"a"` / `"b"`).
        branch: &'static str,
        /// `S_branch / S_out` as declared.
        declared_ratio: f64,
        /// What the baked multiplier actually computes.
        realized_ratio: f64,
    },
    /// A zero-point stored on an edge disagrees with the producing node's
    /// output zero-point.
    ZeroPointMismatch {
        /// Node name (the consumer).
        node: String,
        /// Which input (`"a"` / `"b"`).
        branch: &'static str,
        /// Producer's output zero-point.
        expected: i64,
        /// Zero-point the consumer will subtract.
        got: i64,
    },
    /// A zero-point is not a representable code of its tensor's width.
    ZeroPointOutOfRange {
        /// Node name.
        node: String,
        /// The out-of-range zero-point.
        zero_point: i64,
        /// The width's maximum code.
        qmax: u32,
    },
    /// Structural disagreement between a node's operands (channel counts,
    /// branch shapes, requantizer coverage, …).
    ShapeMismatch {
        /// Node name.
        node: String,
        /// What disagrees.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::AccOverflow {
                node,
                stage,
                lo,
                hi,
                bound,
            } => write!(
                f,
                "{node}: {stage} interval [{lo}, {hi}] exceeds {bound} for some admissible input"
            ),
            Violation::DotLengthExceedsKernel {
                node,
                k,
                chunk,
                max,
            } => write!(
                f,
                "{node}: dot chunk of {chunk} (k = {k}) exceeds the gemv2 contract MAX_DOT_LEN = {max}"
            ),
            Violation::PlanGateMismatch {
                node,
                plan_vectorizable,
                reason,
            } => write!(
                f,
                "{node}: requant plan gate (vectorizable = {plan_vectorizable}) disagrees with parameters: {reason}"
            ),
            Violation::ThresholdNotMonotone { node, channel } => write!(
                f,
                "{node}: threshold table of channel {channel} is not monotone"
            ),
            Violation::ScheduleAliasing {
                tensor,
                freed_after,
                used_at,
            } => write!(
                f,
                "schedule frees tensor {tensor} after step {freed_after} but step {used_at} still reads it (arena would alias)"
            ),
            Violation::TerminalDropped {
                tensor,
                freed_after,
                needed_until,
            } => write!(
                f,
                "terminal tensor {tensor} dropped after step {freed_after}, needed until {needed_until}"
            ),
            Violation::ScheduleMalformed { detail } => {
                write!(f, "schedule malformed: {detail}")
            }
            Violation::ScratchShortfall {
                node,
                needed_bytes,
                planned_bytes,
            } => write!(
                f,
                "{node}: needs {needed_bytes} scratch bytes, plan provisions {planned_bytes}"
            ),
            Violation::RamPlanMismatch { computed, planned } => write!(
                f,
                "live-set walk peaks at {computed} bytes but the planner reports {planned}"
            ),
            Violation::JoinScaleMismatch {
                node,
                branch,
                declared_ratio,
                realized_ratio,
            } => write!(
                f,
                "{node}: branch {branch} declares scale ratio {declared_ratio:.9} but the baked multiplier realizes {realized_ratio:.9}"
            ),
            Violation::ZeroPointMismatch {
                node,
                branch,
                expected,
                got,
            } => write!(
                f,
                "{node}: branch {branch} subtracts zero-point {got} but its producer emits {expected}"
            ),
            Violation::ZeroPointOutOfRange {
                node,
                zero_point,
                qmax,
            } => write!(
                f,
                "{node}: zero-point {zero_point} outside the code range [0, {qmax}]"
            ),
            Violation::ShapeMismatch { node, detail } => {
                write!(f, "{node}: {detail}")
            }
        }
    }
}

impl Violation {
    /// Short machine-stable kind tag (golden reports key on it).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::AccOverflow { .. } => "acc_overflow",
            Violation::DotLengthExceedsKernel { .. } => "dot_length",
            Violation::PlanGateMismatch { .. } => "plan_gate",
            Violation::ThresholdNotMonotone { .. } => "threshold_monotone",
            Violation::ScheduleAliasing { .. } => "schedule_aliasing",
            Violation::TerminalDropped { .. } => "terminal_dropped",
            Violation::ScheduleMalformed { .. } => "schedule_malformed",
            Violation::ScratchShortfall { .. } => "scratch_shortfall",
            Violation::RamPlanMismatch { .. } => "ram_plan_mismatch",
            Violation::JoinScaleMismatch { .. } => "join_scale",
            Violation::ZeroPointMismatch { .. } => "zero_point_mismatch",
            Violation::ZeroPointOutOfRange { .. } => "zero_point_range",
            Violation::ShapeMismatch { .. } => "shape_mismatch",
        }
    }
}

/// The per-node certificate: the bounds the verifier proved for one
/// scheduled node under its resolved kernel choice.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCert {
    /// Node name (schedule order is the report order).
    pub node: String,
    /// Operator label (`conv` / `dwconv` / `pool` / `fc` / `add`).
    pub op: &'static str,
    /// Resolved kernel label.
    pub choice: &'static str,
    /// Dot length `k` (kernel taps × input channels; 0 where not a dot).
    pub k: usize,
    /// Longest contiguous run accumulated in `i32` before the `i64` flush
    /// (`k` on the fused hot path, the chunk size on the long path).
    pub chunk: usize,
    /// Proven interval of the `i32` accumulation stage.
    pub acc: (i64, i64),
    /// Proven interval of the folded `Φ` (per-channel hull, worst-case
    /// input zero-point) — the requantizer's input domain.
    pub phi: (i64, i64),
    /// Whether the stored `RequantPlan` engages the vector epilogue.
    pub vectorizable: bool,
    /// Whether the hoisted corrections provably fit `i32` for every input
    /// (the `vector_gemm` fast-path gate; scalar fallback otherwise).
    pub corrections_fit_i32: bool,
}

/// The verification result for one lowered graph.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Caller-supplied label (model / backend / assignment).
    pub graph: String,
    /// Per-node certificates, in schedule order.
    pub nodes: Vec<NodeCert>,
    /// Everything the verifier could not prove (empty ⇒ verified).
    pub violations: Vec<Violation>,
    /// Peak activation RAM of the verified schedule (planner-agreed).
    pub peak_ram_bytes: usize,
    /// Peak transient scratch of the verified schedule.
    pub peak_scratch_bytes: usize,
}

impl VerifyReport {
    /// Whether every check passed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable multi-line summary (one line per node, then one per
    /// violation).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "verify {}: {} nodes, {} violations, peak_ram={} peak_scratch={}",
            self.graph,
            self.nodes.len(),
            self.violations.len(),
            self.peak_ram_bytes,
            self.peak_scratch_bytes
        );
        for n in &self.nodes {
            let _ = writeln!(
                s,
                "  {} [{} / {}] k={} chunk={} acc=[{}, {}] phi=[{}, {}] simd={} corr32={}",
                n.node,
                n.op,
                n.choice,
                n.k,
                n.chunk,
                n.acc.0,
                n.acc.1,
                n.phi.0,
                n.phi.1,
                n.vectorizable,
                n.corrections_fit_i32
            );
        }
        for v in &self.violations {
            let _ = writeln!(s, "  VIOLATION[{}]: {v}", v.kind());
        }
        s
    }
}
