//! # mixq-verify
//!
//! Static verification of lowered integer graphs: the machine-checked
//! version of the informal proofs the kernels rely on (`MAX_DOT_LEN`
//! comments, scattered `debug_assert`s). One pass over a deployed
//! [`QGraph`] — or a shape-level [`NetworkSpec`] before training — proves,
//! per node and per resolved kernel choice:
//!
//! * **(a) No intermediate overflows its width for any input.** Interval
//!   (abstract-interpretation) range analysis follows each kernel's exact
//!   dataflow: u8 code ranges from the tensor plan's bit widths →
//!   unsigned dot-product partial sums → `i32` accumulator chunks
//!   (including the `blocked_rows_long` chunked cold path and odd-`k`
//!   tails) → `i64` flush with hoisted zero-point corrections → the
//!   requantizer's saturating `Φ + Bq` input. Conv `Φ` bounds are
//!   computed **tightly from the actual weight codes** (achievable by an
//!   adversarial input), not from the generic `±k·qx·qw` hull.
//! * **(b) Every `RequantPlan` is SIMD-expressible or correctly gated to
//!   scalar.** The `M0·2^N0` shift gate (`31 − N0 ≥ 0`) and the
//!   threshold-table regularity gate (`qmax ≤ 15`, uniform lengths,
//!   monotone tables) are recomputed from the requantizer parameters and
//!   cross-checked against the stored plan — a divergence in either
//!   direction (silent wrong SIMD results, or silent scalar fallback) is
//!   a [`Violation::PlanGateMismatch`].
//! * **(c) The liveness schedule never aliases two live tensors** and the
//!   planned scratch suffices: [`check_schedule`] proves no step reads a
//!   tensor the arena has already reclaimed, the terminal tensor
//!   survives, and an independent Eq. 7 live-set walk reproduces the
//!   planner's peak exactly.
//! * **(d) Scales and zero-points agree at every `QAdd` join and graph
//!   edge.** Producer zero-points are propagated statically along edges
//!   and compared against what each consumer subtracts; declared branch
//!   scales are checked against the baked fixed-point multipliers.
//!
//! The result is a [`VerifyReport`]: per-node [`NodeCert`] certificates
//! (the proven bounds — `k`, chunk length, accumulator and `Φ`
//! intervals, plan gates) plus structured [`Violation`]s with precise
//! diagnostics. An empty violation list is a proof over *all* inputs,
//! not a test over samples.
//!
//! # Abstract domain
//!
//! The only domain is the closed integer interval ([`Interval`]) with
//! `i128` endpoints — wide enough that the analysis itself can never
//! wrap, so a forged graph's true range is always representable and the
//! `fits_i32`/`fits_i64` predicates decide each width soundly. All
//! transfer functions (sum, product, fixed-point `apply`) are
//! endpoint-exact on the monotone paths the kernels use.
//!
//! # Examples
//!
//! ```
//! use mixq_models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
//! use mixq_quant::BitWidth;
//! use mixq_verify::verify_spec_uniform;
//!
//! let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
//! let report = verify_spec_uniform("224_1.0/w8a8", &spec, BitWidth::W8, BitWidth::W8);
//! assert!(report.ok(), "{}", report.render());
//! // The stem conv: k = 3·3·3 = 27 taps, all in one i32 chunk.
//! assert_eq!(report.nodes[0].k, 27);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod interval;
pub mod report;
pub mod spec;

pub use graph::{
    blocked_chunk_len, check_dot_geometry, check_schedule, conv_phi_intervals, requant_gate,
    verify_add_node, verify_graph,
};
pub use interval::Interval;
pub use report::{NodeCert, VerifyReport, Violation};
pub use spec::{verify_spec, verify_spec_uniform};

#[cfg(doc)]
use mixq_kernels::QGraph;
#[cfg(doc)]
use mixq_models::NetworkSpec;
