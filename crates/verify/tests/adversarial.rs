//! Adversarial overflow corner tests: max-magnitude operands driven
//! through the real kernels at the exact geometry boundaries the verifier
//! reasons about, asserting (1) the kernels stay bit-identical across
//! SIMD levels at the corners, (2) the verifier's intervals are *tight* —
//! achieved by the adversarial inputs, not merely sound — and (3) forged
//! geometry, schedules and joins are rejected with the precise
//! diagnostic.

use mixq_kernels::simd::{self, SimdLevel, MAX_DOT_LEN};
use mixq_kernels::{QAdd, Requantizer, ThresholdChannel};
use mixq_quant::BitWidth;
use mixq_tensor::Shape;
use mixq_verify::{
    blocked_chunk_len, check_dot_geometry, check_schedule, requant_gate, verify_add_node, Violation,
};

/// Runs `gemv2` over an all-max panel (`x = w = 255` everywhere) at dot
/// length `k` and returns the per-channel accumulators of both rows.
fn gemv2_all_max(level: SimdLevel, k: usize, co_n: usize) -> (Vec<i32>, Vec<i32>) {
    let x = vec![255u8; k];
    let pairs = vec![255u8; (k / 2) * co_n * 2];
    let tail = vec![255u8; co_n * (k & 1)];
    let mut acc0 = vec![0i32; co_n];
    let mut acc1 = vec![0i32; co_n];
    simd::gemv2(level, &x, &x, &pairs, &tail, &mut acc0, &mut acc1);
    (acc0, acc1)
}

#[test]
fn gemv2_max_magnitude_at_contract_boundary() {
    // k = MAX_DOT_LEN is the largest chunk the dispatch contract admits;
    // k = MAX_DOT_LEN − 1 exercises the odd-k tail at the same scale.
    for k in [2usize, 3, 7, MAX_DOT_LEN - 1, MAX_DOT_LEN] {
        let expected = (k as i64 * 255 * 255) as i32; // fits: 32768·255² < 2³¹
        let (s0, s1) = gemv2_all_max(SimdLevel::Scalar, k, 4);
        assert!(s0.iter().chain(&s1).all(|&a| a == expected), "k = {k}");

        let level = simd::active_level();
        let (v0, v1) = gemv2_all_max(level, k, 4);
        assert_eq!((&s0, &s1), (&v0, &v1), "{level:?} diverges at k = {k}");

        // Verifier tightness: the proven i32-chunk interval's upper bound
        // is exactly the value the all-max input just achieved.
        let (acc, violations) = check_dot_geometry("corner", k, k, 255, 255);
        assert!(violations.is_empty(), "k = {k} must verify");
        assert_eq!(acc.hi(), expected as i128, "interval not tight at k = {k}");
        assert_eq!(acc.lo(), 0);
    }
}

#[test]
fn gemv2_odd_k_tail_bit_identity() {
    // Mixed (non-uniform) codes through the odd-k tail path, scalar vs
    // active SIMD level.
    let k = 4097; // odd, forces the tail element
    let co_n = 9; // odd channel count, forces the channel remainder
    let x0: Vec<u8> = (0..k).map(|i| (i * 37 % 256) as u8).collect();
    let x1: Vec<u8> = (0..k).map(|i| (i * 101 % 256) as u8).collect();
    let pairs: Vec<u8> = (0..(k / 2) * co_n * 2)
        .map(|i| (i * 53 % 256) as u8)
        .collect();
    let tail: Vec<u8> = (0..co_n).map(|i| (i * 29 % 256) as u8).collect();
    let mut s = (vec![0i32; co_n], vec![0i32; co_n]);
    simd::gemv2(
        SimdLevel::Scalar,
        &x0,
        &x1,
        &pairs,
        &tail,
        &mut s.0,
        &mut s.1,
    );
    let mut v = (vec![0i32; co_n], vec![0i32; co_n]);
    let level = simd::active_level();
    simd::gemv2(level, &x0, &x1, &pairs, &tail, &mut v.0, &mut v.1);
    assert_eq!(s, v, "{level:?} diverges on the odd-k tail");
}

#[test]
fn chunking_covers_past_contract_lengths() {
    // k = MAX_DOT_LEN + 1 cannot be one chunk; the blocked cold path
    // splits it and the verifier's chunk model stays within the contract.
    for k in [MAX_DOT_LEN + 1, 2 * MAX_DOT_LEN + 7, 100_000] {
        let chunk = blocked_chunk_len(k);
        assert_eq!(chunk, MAX_DOT_LEN & !1);
        let (_, violations) = check_dot_geometry("long", k, chunk, 255, 255);
        assert!(violations.is_empty(), "chunked k = {k} must verify");
    }
}

#[test]
fn forged_chunk_rejected_at_exact_boundaries() {
    // One past the contract: contract violation only — 32769·255² still
    // fits i32, and the verifier must say which line was crossed.
    let (_, v) = check_dot_geometry("forged", 40_000, MAX_DOT_LEN + 1, 255, 255);
    assert_eq!(v.len(), 1);
    assert!(matches!(
        &v[0],
        Violation::DotLengthExceedsKernel { chunk, max, .. }
            if *chunk == MAX_DOT_LEN + 1 && *max == MAX_DOT_LEN
    ));

    // The largest arithmetically safe chunk: ⌊2³¹/255²⌋ = 33025. Still a
    // contract violation, still no overflow.
    let (acc, v) = check_dot_geometry("forged", 33_025, 33_025, 255, 255);
    assert_eq!(v.len(), 1, "33025·255² = {} fits i32", acc.hi());
    assert!(matches!(&v[0], Violation::DotLengthExceedsKernel { .. }));

    // One more element and the i32 bound falls too: both diagnostics.
    let (_, v) = check_dot_geometry("forged", 33_026, 33_026, 255, 255);
    assert_eq!(v.len(), 2);
    assert!(matches!(
        &v[1],
        Violation::AccOverflow {
            stage: "i32-chunk",
            ..
        }
    ));
}

#[test]
fn forged_schedules_rejected() {
    // Tensor 0 freed after step 0 but read by step 2: aliasing.
    let inputs = vec![vec![0], vec![1], vec![0, 2]];
    let v = check_schedule(&inputs, &[0, 1, 2, 3]);
    assert_eq!(v.len(), 1);
    assert!(matches!(
        &v[0],
        Violation::ScheduleAliasing {
            tensor: 0,
            freed_after: 0,
            used_at: 2
        }
    ));

    // Terminal tensor dropped one step early.
    let inputs = vec![vec![0], vec![1], vec![2]];
    let v = check_schedule(&inputs, &[0, 1, 2, 2]);
    assert!(matches!(
        &v[0],
        Violation::TerminalDropped { tensor: 3, .. }
    ));

    // Wrong coverage and a use before definition are structural.
    let v = check_schedule(&inputs, &[0, 1, 2]);
    assert!(matches!(&v[0], Violation::ScheduleMalformed { .. }));
    let v = check_schedule(&[vec![2]], &[0, 1]);
    assert!(matches!(&v[0], Violation::ScheduleMalformed { .. }));

    // The honest schedule of the same uses verifies.
    let inputs = vec![vec![0], vec![1], vec![0, 2]];
    assert!(check_schedule(&inputs, &[2, 1, 2, 3]).is_empty());
}

#[test]
fn forged_join_rejected_with_precise_diagnostics() {
    let shape = Shape::feature_map(4, 4, 8);
    let bits = [BitWidth::W8, BitWidth::W8];

    // Declared branch-b scale disagrees with the baked multiplier.
    let add = QAdd::from_scales(0.5, 0.25, 1.0, 10, 12, 7, BitWidth::W8)
        .with_declared_scales(0.5, 0.6, 1.0);
    let (_, v) = verify_add_node("join", &add, [shape, shape], bits, [Some(10), Some(12)]);
    assert_eq!(v.len(), 1);
    assert!(matches!(
        &v[0],
        Violation::JoinScaleMismatch { branch: "b", declared_ratio, .. }
            if (*declared_ratio - 0.6).abs() < 1e-12
    ));

    // Producer zero-point on branch a disagrees with what the add
    // subtracts.
    let add = QAdd::from_scales(0.5, 0.25, 1.0, 10, 12, 7, BitWidth::W8);
    let (_, v) = verify_add_node("join", &add, [shape, shape], bits, [Some(11), Some(12)]);
    assert_eq!(v.len(), 1);
    assert!(matches!(
        &v[0],
        Violation::ZeroPointMismatch {
            branch: "a",
            expected: 11,
            got: 10,
            ..
        }
    ));

    // Honest joins (declared scales matching the baked multipliers, edge
    // zero-points agreeing) verify cleanly.
    let add = QAdd::from_scales(0.5, 0.25, 1.0, 10, 12, 7, BitWidth::W8);
    let (cert, v) = verify_add_node("join", &add, [shape, shape], bits, [Some(10), Some(12)]);
    assert!(v.is_empty(), "{v:?}");
    assert!(cert.vectorizable);
}

#[test]
fn threshold_tables_at_i64_extremes() {
    // A micro-scale multiplier pushes the comparison thresholds toward the
    // i64 extremes; eval must agree with a plain linear scan there, and
    // the verifier's gate must still accept the (regular, monotone) table.
    let ch = ThresholdChannel::from_affine(1.0e-15, 3, 0, BitWidth::W4);
    assert!(!ch.is_empty());
    let t = ch.thresholds().to_vec();
    assert!(
        t.windows(2).all(|w| w[0] <= w[1]) || t.windows(2).all(|w| w[0] >= w[1]),
        "extreme table must stay monotone"
    );
    let mut cmps = 0u64;
    for phi in [
        i64::MIN,
        i64::MIN + 1,
        -1,
        0,
        1,
        i64::MAX - 1,
        i64::MAX,
        t[0],
        t[t.len() - 1],
    ] {
        let got = ch.eval(phi, &mut cmps);
        // Linear reference: count thresholds passed in table order.
        let passed = if ch.is_ascending() {
            t.iter().filter(|&&th| th <= phi).count()
        } else {
            t.iter().filter(|&&th| th >= phi).count()
        };
        assert_eq!(got as usize, passed, "phi = {phi}");
    }

    // The verifier's expressibility gate over a thresholds requantizer
    // with such extreme tables: W4 (15 entries) passes, W8 (255 entries)
    // exceeds the vector budget and must gate to scalar.
    let req = Requantizer::Thresholds {
        channels: vec![ch],
        zy: 0,
        out_bits: BitWidth::W4,
    };
    assert!(requant_gate(&req).0);
    let ch8 = ThresholdChannel::from_affine(1.0e-15, 3, 0, BitWidth::W8);
    let req = Requantizer::Thresholds {
        channels: vec![ch8],
        zy: 0,
        out_bits: BitWidth::W8,
    };
    let (ok, reason) = requant_gate(&req);
    assert!(!ok);
    assert!(reason.contains("255"), "reason: {reason}");
}
