//! The fake-quantized network `g(x)` of Fig. 1: stacked
//! `conv → batch-norm → PACT-quant` blocks plus a pooled linear classifier,
//! trainable in float or fake-quantized mode, with either the ICN-friendly
//! unfolded graph or the Jacob-style batch-norm-folded graph (PL+FB).
//!
//! The micro-CNNs built here are the synthetic-data stand-ins for
//! MobileNetV1 (see `DESIGN.md`, "Substitutions"); the block structure
//! (depthwise/pointwise pairs available via [`MicroCnnSpec::separable`])
//! and every quantization mechanism match the paper's deployment graphs.

use mixq_quant::observer::PactClip;
use mixq_quant::{BitWidth, ChannelParams, Granularity, QuantParams};
use mixq_tensor::{ConvGeometry, Padding, Shape, Tensor};

use crate::activation::ActCache;
use crate::batchnorm::BnCache;
use crate::{BatchNorm, Conv2d, ConvKind, GlobalAvgPool, Linear, PactQuantAct};

/// Specification of one convolution block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    /// Output channels.
    pub out_channels: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Standard or depthwise.
    pub kind: ConvKind,
    /// Square kernel size.
    pub kernel: usize,
}

/// Specification of a trainable micro-CNN.
///
/// # Examples
///
/// ```
/// use mixq_nn::qat::MicroCnnSpec;
///
/// let spec = MicroCnnSpec::new(8, 8, 2, 4, &[8, 16]);
/// assert_eq!(spec.blocks().len(), 2);
/// let sep = MicroCnnSpec::separable(16, 16, 2, 4, &[8, 16]);
/// assert_eq!(sep.blocks().len(), 3); // stem + one dw/pw pair
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MicroCnnSpec {
    height: usize,
    width: usize,
    channels: usize,
    num_classes: usize,
    blocks: Vec<BlockSpec>,
    residuals: Vec<(usize, usize)>,
    initial_clip: f32,
}

impl MicroCnnSpec {
    /// Plain CNN: 3×3 standard convolutions, stride 2 from the second block
    /// on (progressive downsampling, MobileNet-style).
    pub fn new(
        height: usize,
        width: usize,
        channels: usize,
        num_classes: usize,
        block_channels: &[usize],
    ) -> Self {
        assert!(!block_channels.is_empty(), "need at least one block");
        let blocks = block_channels
            .iter()
            .enumerate()
            .map(|(i, &c)| BlockSpec {
                out_channels: c,
                stride: if i == 0 { 1 } else { 2 },
                kind: ConvKind::Standard,
                kernel: 3,
            })
            .collect();
        MicroCnnSpec {
            height,
            width,
            channels,
            num_classes,
            blocks,
            residuals: Vec::new(),
            initial_clip: 8.0,
        }
    }

    /// MobileNet-style CNN: a standard stem followed by depthwise-separable
    /// pairs (3×3 depthwise + 1×1 pointwise), stride 2 on the depthwise of
    /// every pair.
    pub fn separable(
        height: usize,
        width: usize,
        channels: usize,
        num_classes: usize,
        pair_channels: &[usize],
    ) -> Self {
        assert!(!pair_channels.is_empty(), "need at least one pair");
        let mut blocks = vec![BlockSpec {
            out_channels: pair_channels[0],
            stride: 1,
            kind: ConvKind::Standard,
            kernel: 3,
        }];
        for &c in &pair_channels[1..] {
            let prev = blocks.last().expect("stem exists").out_channels;
            blocks.push(BlockSpec {
                out_channels: prev,
                stride: 2,
                kind: ConvKind::Depthwise,
                kernel: 3,
            });
            blocks.push(BlockSpec {
                out_channels: c,
                stride: 1,
                kind: ConvKind::Standard,
                kernel: 1,
            });
        }
        MicroCnnSpec {
            height,
            width,
            channels,
            num_classes,
            blocks,
            residuals: Vec::new(),
            initial_clip: 8.0,
        }
    }

    /// Replaces the block list wholesale (clears any residual skips, which
    /// index into the old list).
    pub fn with_blocks(mut self, blocks: Vec<BlockSpec>) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        self.blocks = blocks;
        self.residuals.clear();
        self
    }

    /// Adds a residual skip: block `to`'s output gains block `from`'s
    /// output before re-quantization (a MobileNetV2-style identity
    /// shortcut). Validated against the actual shapes when the network is
    /// built.
    pub fn with_residual(mut self, from: usize, to: usize) -> Self {
        assert!(from < to, "skip must run forward: {from} -> {to}");
        self.residuals.push((from, to));
        self
    }

    /// The declared residual skips, as `(from, to)` block indices.
    pub fn residuals(&self) -> &[(usize, usize)] {
        &self.residuals
    }

    /// Sets the initial PACT clip (default 8.0).
    pub fn with_initial_clip(mut self, clip: f32) -> Self {
        assert!(clip > 0.0, "clip must be positive");
        self.initial_clip = clip;
        self
    }

    /// Input height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Input width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Input channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Block specifications.
    pub fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    /// Input shape for a single image.
    pub fn input_shape(&self) -> Shape {
        Shape::feature_map(self.height, self.width, self.channels)
    }
}

/// One `conv → batch-norm → PACT` block of the fake-quantized graph
/// (the sub-graph of paper Eq. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvBlock {
    conv: Conv2d,
    bn: BatchNorm,
    act: PactQuantAct,
    weight_bits: BitWidth,
    weight_clip: Option<PactClip>,
}

impl ConvBlock {
    /// The convolution.
    pub fn conv(&self) -> &Conv2d {
        &self.conv
    }

    /// Mutable convolution (tests/conversion).
    pub fn conv_mut(&mut self) -> &mut Conv2d {
        &mut self.conv
    }

    /// The batch-norm layer.
    pub fn bn(&self) -> &BatchNorm {
        &self.bn
    }

    /// Mutable batch-norm.
    pub fn bn_mut(&mut self) -> &mut BatchNorm {
        &mut self.bn
    }

    /// The PACT quantized activation.
    pub fn act(&self) -> &PactQuantAct {
        &self.act
    }

    /// Mutable activation.
    pub fn act_mut(&mut self) -> &mut PactQuantAct {
        &mut self.act
    }

    /// Weight precision of this block.
    pub fn weight_bits(&self) -> BitWidth {
        self.weight_bits
    }

    /// Sets the weight precision (memory-driven assignment).
    pub fn set_weight_bits(&mut self, bits: BitWidth) {
        self.weight_bits = bits;
    }

    /// Folds the (frozen) batch-norm into the convolution, returning
    /// `(folded_weights, folded_bias, per_channel_scale γ/σ)` — the
    /// transformation of Jacob et al. that the paper's PL+FB baseline uses.
    pub fn folded_params(&self) -> (Tensor<f32>, Vec<f32>, Vec<f32>) {
        let gamma = self.bn.gamma();
        let beta = self.bn.beta();
        let mean = self.bn.running_mean();
        let std = self.bn.running_std();
        let co = self.conv.out_channels();
        let scale: Vec<f32> = (0..co).map(|c| gamma[c] / std[c]).collect();
        let mut w = self.conv.weights().clone();
        let vol = w.shape().item_volume();
        for c in 0..co {
            for v in &mut w.data_mut()[c * vol..(c + 1) * vol] {
                *v *= scale[c];
            }
        }
        let bias: Vec<f32> = (0..co)
            .map(|c| (self.conv.bias()[c] - mean[c]) * scale[c] + beta[c])
            .collect();
        (w, bias, scale)
    }

    /// The learned symmetric PACT clip on this block's weights, if enabled
    /// (the paper's per-layer weight quantizer, §6: "the PACT method is
    /// used in case of PL quantization").
    pub fn weight_clip(&self) -> Option<&PactClip> {
        self.weight_clip.as_ref()
    }

    /// Mutable weight clip (the trainer applies its gradient).
    pub fn weight_clip_mut(&mut self) -> Option<&mut PactClip> {
        self.weight_clip.as_mut()
    }

    /// Initializes the learned weight clip from the current weight range.
    pub fn init_weight_clip(&mut self) {
        let bound = self.conv.weights().max_abs().max(1e-3);
        self.weight_clip = Some(PactClip::new(bound));
    }

    /// Removes the learned weight clip (back to min/max statistics).
    pub fn clear_weight_clip(&mut self) {
        self.weight_clip = None;
    }

    /// The weight quantizer for the *unfolded* weights at the given
    /// granularity: min/max statistics, except per-layer with a learned
    /// clip present, which uses the symmetric PACT range (what the ICN
    /// path quantizes).
    pub fn weight_quantizer(&self, granularity: Granularity) -> ChannelParams {
        match (&self.weight_clip, granularity) {
            (Some(clip), Granularity::PerLayer) => ChannelParams::per_layer(
                QuantParams::symmetric(clip.bound(), self.weight_bits),
                self.conv.out_channels(),
            ),
            _ => {
                ChannelParams::from_granularity(self.conv.weights(), self.weight_bits, granularity)
            }
        }
    }
}

/// A residual skip connection of the fake-quantized graph: block `to`'s
/// activated output gains block `from`'s activated output, and the sum is
/// re-quantized by a dedicated PACT activation (whose scale the integer
/// conversion lowers into a requantizing `QAdd` node).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualSkip {
    from: usize,
    to: usize,
    act: PactQuantAct,
}

impl ResidualSkip {
    /// Source block index (its post-residual output feeds the skip).
    pub fn from(&self) -> usize {
        self.from
    }

    /// Destination block index (the skip joins after this block's own
    /// activation).
    pub fn to(&self) -> usize {
        self.to
    }

    /// The PACT activation re-quantizing the sum.
    pub fn act(&self) -> &PactQuantAct {
        &self.act
    }

    /// Mutable activation (the trainer applies the clip gradient).
    pub fn act_mut(&mut self) -> &mut PactQuantAct {
        &mut self.act
    }
}

/// Quantization mode of the whole network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QatMode {
    /// Full-precision baseline `f(x)`.
    #[default]
    Float,
    /// Fake-quantized graph `g(x)`.
    FakeQuant,
}

/// Per-batch caches for the backward pass.
#[derive(Debug)]
pub struct ForwardCache {
    block_inputs: Vec<Tensor<f32>>,
    block_weights: Vec<Tensor<f32>>,
    bn_caches: Vec<Option<BnCache>>,
    act_caches: Vec<ActCache>,
    fold_scales: Vec<Option<Vec<f32>>>,
    res_caches: Vec<Option<ActCache>>,
    pool_input_shape: Shape,
    linear_input: Tensor<f32>,
    linear_weights: Tensor<f32>,
}

/// The trainable fake-quantized network.
///
/// See the [crate-level docs](crate) for an example.
#[derive(Debug, Clone, PartialEq)]
pub struct QatNetwork {
    blocks: Vec<ConvBlock>,
    residuals: Vec<ResidualSkip>,
    pool: GlobalAvgPool,
    linear: Linear,
    linear_weight_bits: BitWidth,
    input_quant: Option<QuantParams>,
    mode: QatMode,
    granularity: Granularity,
    fold_bn: bool,
    num_classes: usize,
    input_shape: Shape,
}

impl QatNetwork {
    /// Builds a float-mode network from a spec with seeded initialization.
    pub fn build(spec: &MicroCnnSpec, seed: u64) -> Self {
        let mut blocks = Vec::with_capacity(spec.blocks().len());
        let mut in_c = spec.channels();
        let mut shape = spec.input_shape();
        for (i, b) in spec.blocks().iter().enumerate() {
            let geometry = ConvGeometry::new(b.kernel, b.kernel, b.stride, Padding::Same);
            let in_channels = if b.kind == ConvKind::Depthwise {
                b.out_channels
            } else {
                in_c
            };
            assert_eq!(
                in_channels, in_c,
                "block {i}: depthwise blocks must preserve channel count"
            );
            let conv = Conv2d::new(b.kind, in_c, b.out_channels, geometry, seed + i as u64 * 97);
            shape = conv.output_shape(shape);
            blocks.push(ConvBlock {
                conv,
                bn: BatchNorm::new(b.out_channels),
                act: PactQuantAct::new(spec.initial_clip, BitWidth::W8, false),
                weight_bits: BitWidth::W8,
                weight_clip: None,
            });
            in_c = b.out_channels;
        }
        let linear = Linear::new(in_c, spec.num_classes(), seed + 7777);
        let mut net = QatNetwork {
            blocks,
            residuals: Vec::new(),
            pool: GlobalAvgPool,
            linear,
            linear_weight_bits: BitWidth::W8,
            input_quant: None,
            mode: QatMode::Float,
            granularity: Granularity::PerLayer,
            fold_bn: false,
            num_classes: spec.num_classes(),
            input_shape: spec.input_shape(),
        };
        for &(from, to) in spec.residuals() {
            net.add_residual_with_clip(from, to, spec.initial_clip);
        }
        net
    }

    /// Adds a residual skip from block `from`'s output to block `to`'s
    /// output, with the sum re-quantized by a fresh PACT activation.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range or not strictly forward, if
    /// block `to` already receives a skip, or if the two block output
    /// shapes disagree (identity shortcuts only — no projection).
    pub fn add_residual(&mut self, from: usize, to: usize) {
        self.add_residual_with_clip(from, to, 8.0);
    }

    fn add_residual_with_clip(&mut self, from: usize, to: usize, clip: f32) {
        assert!(from < to, "skip must run forward: {from} -> {to}");
        assert!(to < self.blocks.len(), "skip destination out of range");
        assert!(
            self.residuals.iter().all(|r| r.to != to),
            "block {to} already receives a residual skip"
        );
        let shapes = self.block_output_shapes();
        assert_eq!(
            shapes[from], shapes[to],
            "identity skip needs matching shapes: block {from} {:?} vs block {to} {:?}",
            shapes[from], shapes[to]
        );
        self.residuals.push(ResidualSkip {
            from,
            to,
            act: PactQuantAct::new(clip, BitWidth::W8, self.mode == QatMode::FakeQuant),
        });
    }

    /// The residual skips, in insertion order.
    pub fn residuals(&self) -> &[ResidualSkip] {
        &self.residuals
    }

    /// Mutable residual skips (the trainer applies clip gradients).
    pub fn residuals_mut(&mut self) -> &mut [ResidualSkip] {
        &mut self.residuals
    }

    /// Index (into [`QatNetwork::residuals`]) of the skip joining after
    /// block `block`, if any.
    pub fn residual_ending_at(&self, block: usize) -> Option<usize> {
        self.residuals.iter().position(|r| r.to == block)
    }

    fn residual_sourced_at(&self, block: usize) -> bool {
        self.residuals.iter().any(|r| r.from == block)
    }

    /// Single-image output shape of every block (post-convolution).
    fn block_output_shapes(&self) -> Vec<Shape> {
        let mut shape = self.input_shape;
        self.blocks
            .iter()
            .map(|b| {
                shape = b.conv().output_shape(shape);
                shape
            })
            .collect()
    }

    /// Number of convolution blocks (the `L` of Algorithms 1–2, excluding
    /// the classifier).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Expected single-image input shape.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// The blocks.
    pub fn blocks(&self) -> &[ConvBlock] {
        &self.blocks
    }

    /// Mutable blocks.
    pub fn blocks_mut(&mut self) -> &mut [ConvBlock] {
        &mut self.blocks
    }

    /// The classifier head.
    pub fn linear(&self) -> &Linear {
        &self.linear
    }

    /// Mutable classifier head.
    pub fn linear_mut(&mut self) -> &mut Linear {
        &mut self.linear
    }

    /// Classifier weight precision.
    pub fn linear_weight_bits(&self) -> BitWidth {
        self.linear_weight_bits
    }

    /// Sets classifier weight precision.
    pub fn set_linear_weight_bits(&mut self, bits: BitWidth) {
        self.linear_weight_bits = bits;
    }

    /// The 8-bit input quantizer, if calibrated.
    pub fn input_quant(&self) -> Option<&QuantParams> {
        self.input_quant.as_ref()
    }

    /// Current mode.
    pub fn mode(&self) -> QatMode {
        self.mode
    }

    /// Weight-quantizer granularity (PL/PC).
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Whether the batch-norm-folded (PL+FB) graph is active.
    pub fn fold_bn(&self) -> bool {
        self.fold_bn
    }

    /// Enables/disables batch-norm folding (paper enables it from the 2nd
    /// epoch for the FB baselines; the ICN path never folds).
    pub fn set_fold_bn(&mut self, fold: bool) {
        self.fold_bn = fold;
    }

    /// Switches to fake-quantized mode with the given weight granularity,
    /// enabling every activation quantizer.
    pub fn enable_fake_quant(&mut self, granularity: Granularity) {
        self.mode = QatMode::FakeQuant;
        self.granularity = granularity;
        for b in &mut self.blocks {
            b.act.set_quant_enabled(true);
        }
        for r in &mut self.residuals {
            r.act.set_quant_enabled(true);
        }
    }

    /// Enables learned symmetric PACT clips on every block's weights
    /// (per-layer granularity only; per-channel keeps min/max statistics,
    /// as in §6). Initializes each clip from the current weight range.
    pub fn enable_pact_weight_clips(&mut self) {
        for b in &mut self.blocks {
            b.init_weight_clip();
        }
    }

    /// Switches back to float mode (activations become clipped ReLUs).
    pub fn disable_fake_quant(&mut self) {
        self.mode = QatMode::Float;
        for b in &mut self.blocks {
            b.act.set_quant_enabled(false);
        }
        for r in &mut self.residuals {
            r.act.set_quant_enabled(false);
        }
    }

    /// Calibrates the 8-bit asymmetric input quantizer from sample images.
    pub fn calibrate_input(&mut self, images: &Tensor<f32>) {
        let (lo, hi) = images.min_max();
        self.input_quant = Some(QuantParams::from_min_max(lo, hi, BitWidth::W8));
    }

    /// Sets the activation precision of block `i`'s output
    /// (`Q_y^i ≡ Q_x^{i+1}`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_act_bits(&mut self, i: usize, bits: BitWidth) {
        self.blocks[i].act.set_bits(bits);
    }

    /// Sets the weight precision of block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_weight_bits(&mut self, i: usize, bits: BitWidth) {
        self.blocks[i].set_weight_bits(bits);
    }

    /// Sets the activation precision of residual skip `r`'s re-quantizing
    /// PACT activation — the width the memory-driven assignment gives the
    /// residual-add output tensor (lowered onto the `QAdd` node's output).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn set_residual_act_bits(&mut self, r: usize, bits: BitWidth) {
        self.residuals[r].act.set_bits(bits);
    }

    /// Freezes every batch-norm layer (paper: after the first epoch).
    pub fn freeze_batch_norms(&mut self) {
        for b in &mut self.blocks {
            b.bn.freeze();
        }
    }

    fn quantize_input(&self, x: &Tensor<f32>) -> Tensor<f32> {
        match (&self.mode, &self.input_quant) {
            (QatMode::FakeQuant, Some(q)) => q.fake_quantize_tensor(x),
            _ => x.clone(),
        }
    }

    /// Effective (possibly fake-quantized, possibly folded) weights and bias
    /// for block `i` in the current mode.
    fn effective_block_params(&self, i: usize) -> (Tensor<f32>, Vec<f32>, Option<Vec<f32>>) {
        let block = &self.blocks[i];
        if self.fold_bn {
            let (w, b, scale) = block.folded_params();
            let w = match self.mode {
                QatMode::FakeQuant => {
                    ChannelParams::from_granularity(&w, block.weight_bits, self.granularity)
                        .fake_quantize_tensor(&w)
                }
                QatMode::Float => w,
            };
            (w, b, Some(scale))
        } else {
            let w = match self.mode {
                QatMode::FakeQuant => block
                    .weight_quantizer(self.granularity)
                    .fake_quantize_tensor(block.conv.weights()),
                QatMode::Float => block.conv.weights().clone(),
            };
            (w, block.conv.bias().to_vec(), None)
        }
    }

    /// Effective classifier weights in the current mode.
    fn effective_linear_weights(&self) -> Tensor<f32> {
        match self.mode {
            QatMode::FakeQuant => ChannelParams::from_granularity(
                self.linear.weights(),
                self.linear_weight_bits,
                self.granularity,
            )
            .fake_quantize_tensor(self.linear.weights()),
            QatMode::Float => self.linear.weights().clone(),
        }
    }

    /// Inference forward pass (batch-norm in eval mode).
    pub fn forward(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let mut h = self.quantize_input(x);
        let mut saved: Vec<Option<Tensor<f32>>> = vec![None; self.blocks.len()];
        for i in 0..self.blocks.len() {
            let (w, bias, _) = self.effective_block_params(i);
            let block = &self.blocks[i];
            let z = block.conv.forward_with_params(&h, &w, &bias);
            let z = if self.fold_bn {
                z
            } else {
                block.bn.forward_eval(&z)
            };
            let (a, _) = block.act.forward(&z);
            h = a;
            if let Some(r) = self.residual_ending_at(i) {
                let skip = saved[self.residuals[r].from]
                    .as_ref()
                    .expect("skip source runs before its destination");
                let (a, _) = self.residuals[r].act.forward(&add_tensors(&h, skip));
                h = a;
            }
            if self.residual_sourced_at(i) {
                saved[i] = Some(h.clone());
            }
        }
        let pooled = self.pool.forward(&h);
        self.linear
            .forward_with(&pooled, &self.effective_linear_weights())
    }

    /// Training forward pass; returns logits plus caches for
    /// [`QatNetwork::backward`].
    pub fn forward_train(&mut self, x: &Tensor<f32>) -> (Tensor<f32>, ForwardCache) {
        let mut h = self.quantize_input(x);
        let n = self.blocks.len();
        let mut block_inputs = Vec::with_capacity(n);
        let mut block_weights = Vec::with_capacity(n);
        let mut bn_caches = Vec::with_capacity(n);
        let mut act_caches = Vec::with_capacity(n);
        let mut fold_scales = Vec::with_capacity(n);
        let mut res_caches: Vec<Option<ActCache>> = vec![None; self.residuals.len()];
        let mut saved: Vec<Option<Tensor<f32>>> = vec![None; n];
        for i in 0..n {
            let (w, bias, scale) = self.effective_block_params(i);
            block_inputs.push(h.clone());
            let block = &mut self.blocks[i];
            let z = block.conv.forward_with_params(&h, &w, &bias);
            let (z, bn_cache) = if self.fold_bn {
                (z, None)
            } else {
                let (z, c) = block.bn.forward_train(&z);
                (z, Some(c))
            };
            let (a, act_cache) = block.act.forward(&z);
            block_weights.push(w);
            bn_caches.push(bn_cache);
            act_caches.push(act_cache);
            fold_scales.push(scale);
            h = a;
            if let Some(r) = self.residual_ending_at(i) {
                let skip = saved[self.residuals[r].from]
                    .as_ref()
                    .expect("skip source runs before its destination");
                let (a, cache) = self.residuals[r].act.forward(&add_tensors(&h, skip));
                res_caches[r] = Some(cache);
                h = a;
            }
            if self.residual_sourced_at(i) {
                saved[i] = Some(h.clone());
            }
        }
        let pool_input_shape = h.shape();
        let pooled = self.pool.forward(&h);
        let lw = self.effective_linear_weights();
        let logits = self.linear.forward_with(&pooled, &lw);
        (
            logits,
            ForwardCache {
                block_inputs,
                block_weights,
                bn_caches,
                act_caches,
                fold_scales,
                res_caches,
                pool_input_shape,
                linear_input: pooled,
                linear_weights: lw,
            },
        )
    }

    /// Backward pass from the logits gradient; returns parameter gradients.
    ///
    /// Straight-through estimators pass gradients unchanged through the
    /// weight and activation quantizers; PACT clip gradients are accumulated
    /// inside the activation modules.
    pub fn backward(&mut self, dlogits: &Tensor<f32>, cache: &ForwardCache) -> Gradients {
        let (dpool, dlw, dlb) =
            self.linear
                .backward(&cache.linear_input, &cache.linear_weights, dlogits);
        let mut dh = self.pool.backward(cache.pool_input_shape, &dpool);
        let n = self.blocks.len();
        let mut conv_w = vec![Tensor::<f32>::default(); n];
        let mut conv_b = vec![Vec::new(); n];
        let mut bn_gamma = vec![Vec::new(); n];
        let mut bn_beta = vec![Vec::new(); n];
        // Gradient pending for each block's post-residual output via a
        // skip branch, added when the reverse sweep reaches that block.
        let mut skip_grads: Vec<Option<Tensor<f32>>> = vec![None; n];
        for i in (0..n).rev() {
            if let Some(e) = skip_grads[i].take() {
                accumulate(&mut dh, &e);
            }
            if let Some(r) = self.residual_ending_at(i) {
                // The sum feeds the residual PACT; its gradient flows to
                // both the block branch and the skip source.
                let res_cache = cache.res_caches[r]
                    .as_ref()
                    .expect("forward_train cached every residual");
                let d_sum = self.residuals[r].act.backward(&dh, res_cache);
                let from = self.residuals[r].from;
                match &mut skip_grads[from] {
                    Some(acc) => accumulate(acc, &d_sum),
                    slot => *slot = Some(d_sum.clone()),
                }
                dh = d_sum;
            }
            let block = &mut self.blocks[i];
            let da = block.act.backward(&dh, &cache.act_caches[i]);
            let dz = match (&cache.bn_caches[i], block.bn.is_frozen()) {
                (Some(bn_cache), _) => {
                    let (dz, dg, dbeta) = block.bn.backward(&da, bn_cache);
                    bn_gamma[i] = dg;
                    bn_beta[i] = dbeta;
                    dz
                }
                (None, _) => da, // folded path: BN is inside the conv params
            };
            let (dx, mut dw, mut db) =
                block
                    .conv
                    .backward(&cache.block_inputs[i], &cache.block_weights[i], &dz);
            // STE through the learned symmetric weight clip (PL only):
            // weights outside ±α receive no gradient; α collects it.
            if self.granularity == Granularity::PerLayer && cache.fold_scales[i].is_none() {
                if let Some(clip) = block.weight_clip.as_mut() {
                    let bound = clip.bound();
                    let mut dalpha = 0.0f32;
                    for (g, &w) in dw.data_mut().iter_mut().zip(block.conv.weights().data()) {
                        if w.abs() >= bound {
                            dalpha += *g * w.signum();
                            *g = 0.0;
                        }
                    }
                    clip.accumulate_grad(dalpha);
                }
            }
            if let Some(scale) = &cache.fold_scales[i] {
                // Chain rule through w' = w·(γ/σ), b' = (b−µ)(γ/σ) + β.
                let vol = dw.shape().item_volume();
                for (c, &s) in scale.iter().enumerate() {
                    for v in &mut dw.data_mut()[c * vol..(c + 1) * vol] {
                        *v *= s;
                    }
                    db[c] *= s;
                }
            }
            conv_w[i] = dw;
            conv_b[i] = db;
            dh = dx;
        }
        Gradients {
            conv_w,
            conv_b,
            bn_gamma,
            bn_beta,
            linear_w: dlw,
            linear_b: dlb,
        }
    }
}

/// Element-wise sum of two same-shape tensors (the residual join).
fn add_tensors(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(
        a.shape(),
        b.shape(),
        "residual branches must agree in shape"
    );
    let mut out = a.clone();
    accumulate(&mut out, b);
    out
}

/// `acc += g`, element-wise.
fn accumulate(acc: &mut Tensor<f32>, g: &Tensor<f32>) {
    assert_eq!(acc.shape(), g.shape(), "gradient shapes must agree");
    for (o, &v) in acc.data_mut().iter_mut().zip(g.data()) {
        *o += v;
    }
}

/// Parameter gradients produced by [`QatNetwork::backward`].
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Per-block convolution weight gradients.
    pub conv_w: Vec<Tensor<f32>>,
    /// Per-block convolution bias gradients.
    pub conv_b: Vec<Vec<f32>>,
    /// Per-block γ gradients (empty when folded/frozen paths skip BN).
    pub bn_gamma: Vec<Vec<f32>>,
    /// Per-block β gradients.
    pub bn_beta: Vec<Vec<f32>>,
    /// Classifier weight gradient.
    pub linear_w: Tensor<f32>,
    /// Classifier bias gradient.
    pub linear_b: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_input(n: usize, spec: &MicroCnnSpec) -> Tensor<f32> {
        let shape = spec.input_shape().with_batch(n);
        Tensor::from_vec(
            shape,
            (0..shape.volume())
                .map(|i| ((i % 17) as f32 - 8.0) * 0.1)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn build_and_forward_shapes() {
        let spec = MicroCnnSpec::new(8, 8, 2, 4, &[4, 8]);
        let net = QatNetwork::build(&spec, 0);
        assert_eq!(net.num_blocks(), 2);
        let x = toy_input(3, &spec);
        let y = net.forward(&x);
        assert_eq!(y.shape(), Shape::new(3, 1, 1, 4));
    }

    #[test]
    fn separable_spec_builds_dw_pw_pairs() {
        let spec = MicroCnnSpec::separable(16, 16, 2, 4, &[8, 16]);
        let kinds: Vec<ConvKind> = spec.blocks().iter().map(|b| b.kind).collect();
        assert_eq!(
            kinds,
            vec![ConvKind::Standard, ConvKind::Depthwise, ConvKind::Standard]
        );
        let net = QatNetwork::build(&spec, 1);
        let x = toy_input(1, &spec);
        let y = net.forward(&x);
        assert_eq!(y.shape().c, 4);
    }

    #[test]
    fn fake_quant_mode_changes_outputs_but_stays_close() {
        let spec = MicroCnnSpec::new(8, 8, 1, 3, &[4]);
        let mut net = QatNetwork::build(&spec, 5);
        let x = toy_input(2, &spec);
        net.calibrate_input(&x);
        let y_float = net.forward(&x);
        net.enable_fake_quant(Granularity::PerChannel);
        let y_q = net.forward(&x);
        assert_ne!(y_float, y_q, "quantization must perturb outputs");
        let d = y_float.squared_distance(&y_q).unwrap();
        let scale: f64 = y_float.data().iter().map(|&v| (v as f64).powi(2)).sum();
        assert!(
            d < scale.max(1e-3),
            "8-bit error should be small: {d} vs {scale}"
        );
    }

    #[test]
    fn folded_eval_matches_unfolded_after_freeze() {
        // With BN frozen, folding is an exact algebraic rewrite in float mode.
        let spec = MicroCnnSpec::new(8, 8, 1, 3, &[4, 8]);
        let mut net = QatNetwork::build(&spec, 9);
        let x = toy_input(2, &spec);
        // Push some statistics through so BN has non-trivial params.
        for _ in 0..3 {
            let _ = net.forward_train(&x);
        }
        net.freeze_batch_norms();
        let y_ref = net.forward(&x);
        net.set_fold_bn(true);
        let y_fold = net.forward(&x);
        let d = y_ref.squared_distance(&y_fold).unwrap();
        assert!(d < 1e-6, "folded float forward must match: {d}");
    }

    #[test]
    fn training_reduces_loss() {
        use crate::loss::cross_entropy;
        use crate::optim::Adam;
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[4]);
        let mut net = QatNetwork::build(&spec, 11);
        let x = toy_input(8, &spec);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let (logits, _) = net.forward_train(&x);
        let (loss0, _) = cross_entropy(&logits, &labels);
        let mut opt_w = Adam::new(0.01, net.blocks()[0].conv().weights().len());
        let mut opt_lw = Adam::new(0.01, net.linear().weights().len());
        for _ in 0..30 {
            let (logits, cache) = net.forward_train(&x);
            let (_, dlogits) = cross_entropy(&logits, &labels);
            let grads = net.backward(&dlogits, &cache);
            let wlen = net.blocks()[0].conv().weights().len();
            let mut wbuf = net.blocks()[0].conv().weights().data().to_vec();
            opt_w.step(&mut wbuf, grads.conv_w[0].data());
            net.blocks_mut()[0]
                .conv_mut()
                .weights_mut()
                .data_mut()
                .copy_from_slice(&wbuf[..wlen]);
            let mut lbuf = net.linear().weights().data().to_vec();
            opt_lw.step(&mut lbuf, grads.linear_w.data());
            net.linear_mut()
                .weights_mut()
                .data_mut()
                .copy_from_slice(&lbuf);
        }
        let (logits, _) = net.forward_train(&x);
        let (loss1, _) = cross_entropy(&logits, &labels);
        assert!(loss1 < loss0, "loss should fall: {loss0} -> {loss1}");
    }

    #[test]
    fn bit_width_setters() {
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[4, 8]);
        let mut net = QatNetwork::build(&spec, 0);
        net.set_act_bits(1, BitWidth::W4);
        net.set_weight_bits(0, BitWidth::W2);
        net.set_linear_weight_bits(BitWidth::W4);
        assert_eq!(net.blocks()[1].act().bits(), BitWidth::W4);
        assert_eq!(net.blocks()[0].weight_bits(), BitWidth::W2);
        assert_eq!(net.linear_weight_bits(), BitWidth::W4);
    }

    #[test]
    fn input_calibration_covers_data_range() {
        let spec = MicroCnnSpec::new(4, 4, 1, 2, &[2]);
        let mut net = QatNetwork::build(&spec, 0);
        assert!(net.input_quant().is_none());
        let x = Tensor::from_vec(
            Shape::new(1, 4, 4, 1),
            (0..16).map(|i| i as f32 - 8.0).collect(),
        )
        .unwrap();
        net.calibrate_input(&x);
        let q = net.input_quant().unwrap();
        assert!(q.range_min() <= -8.0 + 1e-3);
        assert!(q.range_max() >= 7.0 - 1e-3);
    }

    #[test]
    fn pact_weight_clip_quantizer_is_symmetric() {
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[4]);
        let mut net = QatNetwork::build(&spec, 3);
        net.enable_pact_weight_clips();
        let clip = net.blocks()[0].weight_clip().expect("clip present").bound();
        let q = net.blocks()[0].weight_quantizer(Granularity::PerLayer);
        assert!(!q.is_per_channel());
        assert!((q.channel(0).range_max() - clip).abs() < 0.05 * clip + 1e-4);
        assert!((q.channel(0).range_min() + clip).abs() < 0.05 * clip + 1e-4);
        // PC granularity ignores the clip (min/max statistics, §6).
        let qpc = net.blocks()[0].weight_quantizer(Granularity::PerChannel);
        assert!(qpc.is_per_channel());
        // Clearing restores min/max for PL too.
        net.blocks_mut()[0].clear_weight_clip();
        assert!(net.blocks()[0].weight_clip().is_none());
    }

    #[test]
    fn pact_weight_clip_learns_during_qat() {
        use crate::loss::cross_entropy;
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[4]);
        let mut net = QatNetwork::build(&spec, 11);
        // Make some weights exceed the clip so its gradient is non-zero.
        net.enable_fake_quant(Granularity::PerLayer);
        net.enable_pact_weight_clips();
        let before = net.blocks()[0].weight_clip().unwrap().bound();
        // Shrink the clip artificially so saturation occurs.
        *net.blocks_mut()[0].weight_clip_mut().unwrap() =
            mixq_quant::observer::PactClip::new(before * 0.2);
        let x = toy_input(4, &spec);
        let labels = vec![0usize, 1, 0, 1];
        let (logits, cache) = net.forward_train(&x);
        let (_, dlogits) = cross_entropy(&logits, &labels);
        let _ = net.backward(&dlogits, &cache);
        let grad = net.blocks()[0].weight_clip().unwrap().grad();
        assert!(grad != 0.0, "saturated weights must drive the clip");
        net.blocks_mut()[0]
            .weight_clip_mut()
            .unwrap()
            .apply_grad(0.01, 0.0);
        assert_ne!(
            net.blocks()[0].weight_clip().unwrap().bound(),
            before * 0.2,
            "clip moves after a step"
        );
    }

    fn residual_spec() -> MicroCnnSpec {
        // Two same-shape standard blocks joined by an identity skip.
        let block = |c: usize| BlockSpec {
            out_channels: c,
            stride: 1,
            kind: ConvKind::Standard,
            kernel: 3,
        };
        MicroCnnSpec::new(6, 6, 2, 2, &[4])
            .with_blocks(vec![block(4), block(4), block(4)])
            .with_residual(0, 2)
    }

    #[test]
    fn residual_network_builds_and_runs() {
        let spec = residual_spec();
        let net = QatNetwork::build(&spec, 17);
        assert_eq!(net.residuals().len(), 1);
        assert_eq!(net.residuals()[0].from(), 0);
        assert_eq!(net.residuals()[0].to(), 2);
        assert_eq!(net.residual_ending_at(2), Some(0));
        assert_eq!(net.residual_ending_at(1), None);
        let x = toy_input(3, &spec);
        let y = net.forward(&x);
        assert_eq!(y.shape(), Shape::new(3, 1, 1, 2));
        // The skip changes the function: compare with the skip-free twin.
        let plain = QatNetwork::build(&residual_spec().with_blocks(spec.blocks().to_vec()), 17);
        assert!(plain.residuals().is_empty());
        assert_ne!(net.forward(&x), plain.forward(&x));
    }

    #[test]
    fn residual_backward_matches_finite_differences() {
        use crate::loss::cross_entropy;
        let spec = residual_spec();
        let mut net = QatNetwork::build(&spec, 23);
        net.freeze_batch_norms(); // deterministic forward for the probe
        let x = toy_input(2, &spec);
        let labels = vec![0usize, 1];
        let (logits, cache) = net.forward_train(&x);
        let (_, dlogits) = cross_entropy(&logits, &labels);
        let grads = net.backward(&dlogits, &cache);
        // Probe weights in the skip source (block 0, feeds both branches)
        // and inside the skipped segment (block 1).
        for (bi, wi) in [(0usize, 3usize), (0, 11), (1, 0), (1, 7), (2, 5)] {
            let eps = 1e-3f32;
            let orig = net.blocks()[bi].conv().weights().data()[wi];
            let loss_at = |net: &mut QatNetwork, v: f32| {
                net.blocks_mut()[bi].conv_mut().weights_mut().data_mut()[wi] = v;
                let (logits, _) = net.forward_train(&x);
                let (loss, _) = cross_entropy(&logits, &labels);
                loss
            };
            let lp = loss_at(&mut net, orig + eps);
            let lm = loss_at(&mut net, orig - eps);
            loss_at(&mut net, orig); // restore
            let fd = (lp - lm) / (2.0 * eps);
            let analytic = grads.conv_w[bi].data()[wi];
            assert!(
                (fd - analytic).abs() <= 0.05 * analytic.abs().max(0.01),
                "block {bi} weight {wi}: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn residual_act_follows_quant_mode() {
        let mut net = QatNetwork::build(&residual_spec(), 5);
        assert!(!net.residuals()[0].act().quant_enabled());
        net.enable_fake_quant(Granularity::PerChannel);
        assert!(net.residuals()[0].act().quant_enabled());
        net.disable_fake_quant();
        assert!(!net.residuals()[0].act().quant_enabled());
    }

    #[test]
    #[should_panic(expected = "matching shapes")]
    fn residual_shape_mismatch_rejected() {
        // Block 1 strides down: shapes no longer match for an identity skip.
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[4, 4]).with_residual(0, 1);
        let _ = QatNetwork::build(&spec, 0);
    }

    #[test]
    fn mode_switches_are_reversible() {
        let spec = MicroCnnSpec::new(4, 4, 1, 2, &[2]);
        let mut net = QatNetwork::build(&spec, 3);
        let x = toy_input(1, &spec);
        let y0 = net.forward(&x);
        net.enable_fake_quant(Granularity::PerLayer);
        assert_eq!(net.mode(), QatMode::FakeQuant);
        net.disable_fake_quant();
        assert_eq!(net.mode(), QatMode::Float);
        let y1 = net.forward(&x);
        assert_eq!(y0, y1);
    }
}
