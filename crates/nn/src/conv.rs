use mixq_tensor::{ConvGeometry, Shape, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Convolution flavour: standard (dense across input channels) or depthwise
/// (one filter per channel) — the two building blocks of MobileNetV1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvKind {
    /// Standard convolution: weights `(c_o, k_h, k_w, c_i)`.
    Standard,
    /// Depthwise convolution (`c_o == c_i`): weights `(c, k_h, k_w, 1)`.
    Depthwise,
}

/// A 2-D convolution layer with bias, NHWC activations.
///
/// Weights are stored `(c_o, k_h, k_w, c_i)` — output channel outermost so
/// the per-channel quantization axis is the leading dimension.
///
/// # Examples
///
/// ```
/// use mixq_nn::{Conv2d, ConvKind};
/// use mixq_tensor::{ConvGeometry, Padding, Shape, Tensor};
///
/// let conv = Conv2d::new(ConvKind::Standard, 1, 2,
///                        ConvGeometry::new(3, 3, 1, Padding::Same), 0);
/// let x = Tensor::<f32>::zeros(Shape::new(1, 4, 4, 1));
/// let y = conv.forward(&x);
/// assert_eq!(y.shape(), Shape::new(1, 4, 4, 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    kind: ConvKind,
    in_channels: usize,
    out_channels: usize,
    geometry: ConvGeometry,
    weights: Tensor<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution with He-style random initialization.
    ///
    /// # Panics
    ///
    /// Panics if a depthwise convolution is requested with
    /// `in_channels != out_channels`.
    pub fn new(
        kind: ConvKind,
        in_channels: usize,
        out_channels: usize,
        geometry: ConvGeometry,
        seed: u64,
    ) -> Self {
        if kind == ConvKind::Depthwise {
            assert_eq!(
                in_channels, out_channels,
                "depthwise convolution requires c_i == c_o"
            );
        }
        let fan_in = match kind {
            ConvKind::Standard => in_channels * geometry.kernel_area(),
            ConvKind::Depthwise => geometry.kernel_area(),
        };
        let std = (2.0 / fan_in as f32).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let w_shape = Self::weight_shape(kind, in_channels, out_channels, geometry);
        let data = (0..w_shape.volume())
            .map(|_| {
                // Uniform(-√3σ, √3σ) has std σ; avoids needing a normal dist.
                let r: f32 = rng.random_range(-1.0f32..1.0);
                r * std * 3f32.sqrt()
            })
            .collect();
        Conv2d {
            kind,
            in_channels,
            out_channels,
            geometry,
            weights: Tensor::from_vec(w_shape, data).expect("shape volume consistent"),
            bias: vec![0.0; out_channels],
        }
    }

    fn weight_shape(
        kind: ConvKind,
        in_channels: usize,
        out_channels: usize,
        geometry: ConvGeometry,
    ) -> Shape {
        match kind {
            ConvKind::Standard => Shape::new(out_channels, geometry.kh, geometry.kw, in_channels),
            ConvKind::Depthwise => Shape::new(out_channels, geometry.kh, geometry.kw, 1),
        }
    }

    /// The convolution flavour.
    pub fn kind(&self) -> ConvKind {
        self.kind
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Spatial geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geometry
    }

    /// Weight tensor `(c_o, k_h, k_w, c_i)` (depthwise: `c_i = 1`).
    pub fn weights(&self) -> &Tensor<f32> {
        &self.weights
    }

    /// Mutable weight tensor.
    pub fn weights_mut(&mut self) -> &mut Tensor<f32> {
        &mut self.weights
    }

    /// Per-output-channel bias.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Replaces the weights.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn set_weights(&mut self, weights: Tensor<f32>) {
        assert_eq!(weights.shape(), self.weights.shape(), "weight shape");
        self.weights = weights;
    }

    /// Output shape for a given input shape.
    pub fn output_shape(&self, input: Shape) -> Shape {
        let (h, w) = self.geometry.output_size(input.h, input.w);
        Shape::new(input.n, h, w, self.out_channels)
    }

    /// Forward pass with the layer's own weights.
    pub fn forward(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.forward_with(x, &self.weights)
    }

    /// Forward pass with externally supplied (e.g. fake-quantized) weights.
    ///
    /// # Panics
    ///
    /// Panics if channel counts or weight shape disagree with the layer.
    pub fn forward_with(&self, x: &Tensor<f32>, weights: &Tensor<f32>) -> Tensor<f32> {
        self.forward_with_params(x, weights, &self.bias)
    }

    /// Forward pass with externally supplied weights *and* bias (used by the
    /// batch-norm-folded training path, where both are derived tensors).
    ///
    /// # Panics
    ///
    /// Panics if channel counts, weight shape, or bias length disagree.
    pub fn forward_with_params(
        &self,
        x: &Tensor<f32>,
        weights: &Tensor<f32>,
        bias: &[f32],
    ) -> Tensor<f32> {
        assert_eq!(x.shape().c, self.in_channels, "input channels");
        assert_eq!(weights.shape(), self.weights.shape(), "weight shape");
        assert_eq!(bias.len(), self.out_channels, "bias length");
        let out_shape = self.output_shape(x.shape());
        let mut y = Tensor::<f32>::zeros(out_shape);
        let (pt, pl) = self.geometry.pad_top_left(x.shape().h, x.shape().w);
        let s = self.geometry.stride;
        let (kh, kw) = (self.geometry.kh, self.geometry.kw);
        let in_shape = x.shape();
        for n in 0..out_shape.n {
            for oy in 0..out_shape.h {
                for ox in 0..out_shape.w {
                    for co in 0..self.out_channels {
                        let mut acc = bias[co];
                        for ky in 0..kh {
                            let iy = (oy * s + ky) as isize - pt as isize;
                            if iy < 0 || iy >= in_shape.h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * s + kx) as isize - pl as isize;
                                if ix < 0 || ix >= in_shape.w as isize {
                                    continue;
                                }
                                match self.kind {
                                    ConvKind::Standard => {
                                        for ci in 0..self.in_channels {
                                            acc += x.at(n, iy as usize, ix as usize, ci)
                                                * weights.at(co, ky, kx, ci);
                                        }
                                    }
                                    ConvKind::Depthwise => {
                                        acc += x.at(n, iy as usize, ix as usize, co)
                                            * weights.at(co, ky, kx, 0);
                                    }
                                }
                            }
                        }
                        *y.at_mut(n, oy, ox, co) = acc;
                    }
                }
            }
        }
        y
    }

    /// Backward pass.
    ///
    /// Given the upstream gradient `dy` (shape of the output) and the input
    /// `x` that produced it (with the same `weights` used forward), returns
    /// `(dx, dw, db)`.
    pub fn backward(
        &self,
        x: &Tensor<f32>,
        weights: &Tensor<f32>,
        dy: &Tensor<f32>,
    ) -> (Tensor<f32>, Tensor<f32>, Vec<f32>) {
        let out_shape = self.output_shape(x.shape());
        assert_eq!(dy.shape(), out_shape, "upstream gradient shape");
        let mut dx = Tensor::<f32>::zeros(x.shape());
        let mut dw = Tensor::<f32>::zeros(weights.shape());
        let mut db = vec![0.0f32; self.out_channels];
        let (pt, pl) = self.geometry.pad_top_left(x.shape().h, x.shape().w);
        let s = self.geometry.stride;
        let (kh, kw) = (self.geometry.kh, self.geometry.kw);
        let in_shape = x.shape();
        for n in 0..out_shape.n {
            for oy in 0..out_shape.h {
                for ox in 0..out_shape.w {
                    for co in 0..self.out_channels {
                        let g = dy.at(n, oy, ox, co);
                        if g == 0.0 {
                            continue;
                        }
                        db[co] += g;
                        for ky in 0..kh {
                            let iy = (oy * s + ky) as isize - pt as isize;
                            if iy < 0 || iy >= in_shape.h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * s + kx) as isize - pl as isize;
                                if ix < 0 || ix >= in_shape.w as isize {
                                    continue;
                                }
                                let (iy, ix) = (iy as usize, ix as usize);
                                match self.kind {
                                    ConvKind::Standard => {
                                        for ci in 0..self.in_channels {
                                            *dw.at_mut(co, ky, kx, ci) += g * x.at(n, iy, ix, ci);
                                            *dx.at_mut(n, iy, ix, ci) +=
                                                g * weights.at(co, ky, kx, ci);
                                        }
                                    }
                                    ConvKind::Depthwise => {
                                        *dw.at_mut(co, ky, kx, 0) += g * x.at(n, iy, ix, co);
                                        *dx.at_mut(n, iy, ix, co) += g * weights.at(co, ky, kx, 0);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        (dx, dw, db)
    }

    /// Multiply–accumulate operations for one forward pass at `input`
    /// (used by the MCU latency model).
    pub fn macs(&self, input: Shape) -> usize {
        let out = self.output_shape(input);
        let per_output = match self.kind {
            ConvKind::Standard => self.geometry.kernel_area() * self.in_channels,
            ConvKind::Depthwise => self.geometry.kernel_area(),
        };
        out.n * out.pixels() * self.out_channels * per_output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_tensor::Padding;

    fn ramp(shape: Shape) -> Tensor<f32> {
        Tensor::from_vec(shape, (0..shape.volume()).map(|i| i as f32 * 0.1).collect()).unwrap()
    }

    #[test]
    fn identity_pointwise_conv() {
        // A 1x1 conv with identity weights must copy the input.
        let mut conv = Conv2d::new(ConvKind::Standard, 2, 2, ConvGeometry::pointwise(), 0);
        let mut w = Tensor::<f32>::zeros(Shape::new(2, 1, 1, 2));
        *w.at_mut(0, 0, 0, 0) = 1.0;
        *w.at_mut(1, 0, 0, 1) = 1.0;
        conv.set_weights(w);
        let x = ramp(Shape::new(1, 3, 3, 2));
        let y = conv.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn known_3x3_valid_convolution() {
        // Valid 3x3 all-ones kernel over an all-ones 3x3 input = 9.
        let mut conv = Conv2d::new(
            ConvKind::Standard,
            1,
            1,
            ConvGeometry::new(3, 3, 1, Padding::Valid),
            0,
        );
        conv.set_weights(Tensor::full(Shape::new(1, 3, 3, 1), 1.0));
        let x = Tensor::full(Shape::new(1, 3, 3, 1), 1.0);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), Shape::new(1, 1, 1, 1));
        assert_eq!(y.data()[0], 9.0);
    }

    #[test]
    fn same_padding_zero_pads_borders() {
        let mut conv = Conv2d::new(
            ConvKind::Standard,
            1,
            1,
            ConvGeometry::new(3, 3, 1, Padding::Same),
            0,
        );
        conv.set_weights(Tensor::full(Shape::new(1, 3, 3, 1), 1.0));
        let x = Tensor::full(Shape::new(1, 3, 3, 1), 1.0);
        let y = conv.forward(&x);
        // Centre sees all 9 inputs, corners only 4.
        assert_eq!(y.at(0, 1, 1, 0), 9.0);
        assert_eq!(y.at(0, 0, 0, 0), 4.0);
        assert_eq!(y.at(0, 0, 1, 0), 6.0);
    }

    #[test]
    fn bias_is_added() {
        let mut conv = Conv2d::new(ConvKind::Standard, 1, 1, ConvGeometry::pointwise(), 0);
        conv.set_weights(Tensor::full(Shape::new(1, 1, 1, 1), 0.0));
        conv.bias_mut()[0] = 2.5;
        let x = Tensor::full(Shape::new(1, 2, 2, 1), 7.0);
        let y = conv.forward(&x);
        assert!(y.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn depthwise_convolves_channels_independently() {
        let mut conv = Conv2d::new(ConvKind::Depthwise, 2, 2, ConvGeometry::pointwise(), 0);
        let mut w = Tensor::<f32>::zeros(Shape::new(2, 1, 1, 1));
        *w.at_mut(0, 0, 0, 0) = 2.0;
        *w.at_mut(1, 0, 0, 0) = -1.0;
        conv.set_weights(w);
        let mut x = Tensor::<f32>::zeros(Shape::new(1, 1, 1, 2));
        *x.at_mut(0, 0, 0, 0) = 3.0;
        *x.at_mut(0, 0, 0, 1) = 5.0;
        let y = conv.forward(&x);
        assert_eq!(y.at(0, 0, 0, 0), 6.0);
        assert_eq!(y.at(0, 0, 0, 1), -5.0);
    }

    #[test]
    fn stride_two_halves_resolution() {
        let conv = Conv2d::new(
            ConvKind::Standard,
            1,
            4,
            ConvGeometry::new(3, 3, 2, Padding::Same),
            1,
        );
        let y = conv.forward(&Tensor::<f32>::zeros(Shape::new(1, 8, 8, 1)));
        assert_eq!(y.shape(), Shape::new(1, 4, 4, 4));
    }

    #[test]
    fn gradient_check_standard() {
        gradient_check(ConvKind::Standard, 2, 3);
    }

    #[test]
    fn gradient_check_depthwise() {
        gradient_check(ConvKind::Depthwise, 2, 2);
    }

    /// Numerical gradient check on a tiny configuration.
    fn gradient_check(kind: ConvKind, ci: usize, co: usize) {
        let geometry = ConvGeometry::new(3, 3, 2, Padding::Same);
        let conv = Conv2d::new(kind, ci, co, geometry, 3);
        let x = ramp(Shape::new(1, 4, 4, ci));
        let y = conv.forward(&x);
        // Loss = sum(y^2)/2, so dL/dy = y.
        let dy = y.clone();
        let (dx, dw, db) = conv.backward(&x, conv.weights(), &dy);

        let loss = |c: &Conv2d, xs: &Tensor<f32>| -> f64 {
            c.forward(xs)
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum()
        };
        let eps = 1e-3f32;
        // Check dx at a few positions.
        for idx in [0usize, 7, 13] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&conv, &xp) - loss(&conv, &xm)) / (2.0 * eps as f64);
            let ana = dx.data()[idx] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dx[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // Check dw at a few positions.
        for idx in [0usize, 5] {
            let mut cp = conv.clone();
            cp.weights_mut().data_mut()[idx] += eps;
            let mut cm = conv.clone();
            cm.weights_mut().data_mut()[idx] -= eps;
            let num = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * eps as f64);
            let ana = dw.data()[idx] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dw[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // Check db.
        let mut cp = conv.clone();
        cp.bias_mut()[0] += eps;
        let mut cm = conv.clone();
        cm.bias_mut()[0] -= eps;
        let num = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * eps as f64);
        assert!((num - db[0] as f64).abs() < 1e-2 * (1.0 + db[0].abs() as f64));
    }

    #[test]
    fn macs_counting() {
        // 1x1 conv: h*w*co*ci MACs.
        let conv = Conv2d::new(ConvKind::Standard, 8, 16, ConvGeometry::pointwise(), 0);
        assert_eq!(conv.macs(Shape::new(1, 4, 4, 8)), 4 * 4 * 16 * 8);
        // Depthwise 3x3: h*w*c*9.
        let dw = Conv2d::new(
            ConvKind::Depthwise,
            8,
            8,
            ConvGeometry::new(3, 3, 1, Padding::Same),
            0,
        );
        assert_eq!(dw.macs(Shape::new(1, 4, 4, 8)), 4 * 4 * 8 * 9);
    }

    #[test]
    #[should_panic(expected = "depthwise")]
    fn depthwise_channel_mismatch_panics() {
        let _ = Conv2d::new(ConvKind::Depthwise, 2, 4, ConvGeometry::default(), 0);
    }
}
