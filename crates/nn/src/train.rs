//! Quantization-aware training loop implementing the paper's §6 recipe:
//! Adam with a fixed step decay schedule, batch-norm statistics frozen after
//! the first epoch, and (for the PL+FB baseline) batch-norm folding enabled
//! from the second epoch.

use mixq_data::Dataset;

use crate::loss::{accuracy, cross_entropy};
use crate::optim::Adam;
use crate::qat::QatNetwork;

/// Training hyper-parameters.
///
/// # Examples
///
/// ```
/// use mixq_nn::train::TrainConfig;
///
/// let cfg = TrainConfig::fast(4);
/// assert_eq!(cfg.epochs, 4);
/// let paper = TrainConfig::paper_recipe();
/// assert_eq!(paper.lr_schedule, vec![(5, 5e-5), (8, 1e-5)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub initial_lr: f32,
    /// `(epoch, lr)` pairs: from `epoch` (0-based) on, use `lr`.
    pub lr_schedule: Vec<(usize, f32)>,
    /// Freeze batch-norm statistics/parameters after this many epochs
    /// (paper: after the first epoch).
    pub bn_freeze_after: Option<usize>,
    /// Enable batch-norm folding from this 0-based epoch (paper: the 2nd
    /// epoch, i.e. index 1). Only meaningful for the FB baselines.
    pub fold_from_epoch: Option<usize>,
    /// Learning rate for the PACT clip parameters.
    pub pact_lr: f32,
    /// L2 decay on the PACT clips (PACT regularizes `b`).
    pub pact_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's ImageNet recipe (§6): Adam at 1e-4 decayed to 5e-5 and
    /// 1e-5 at epochs 5 and 8, batch 128, BN frozen after epoch 1.
    pub fn paper_recipe() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 128,
            initial_lr: 1e-4,
            lr_schedule: vec![(5, 5e-5), (8, 1e-5)],
            bn_freeze_after: Some(1),
            fold_from_epoch: None,
            pact_lr: 1e-3,
            pact_decay: 1e-4,
            seed: 0,
        }
    }

    /// A fast CPU-scale recipe for the synthetic micro-CNN experiments:
    /// same schedule structure, higher rates, smaller batches.
    pub fn fast(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            batch_size: 16,
            initial_lr: 3e-3,
            lr_schedule: vec![(epochs / 2, 1e-3), (epochs * 4 / 5, 3e-4)],
            bn_freeze_after: Some(1),
            fold_from_epoch: None,
            pact_lr: 1e-2,
            pact_decay: 1e-4,
            seed: 0,
        }
    }

    /// Enables BN folding from epoch `e` (0-based), as the FB baselines do.
    pub fn with_folding_from(mut self, e: usize) -> Self {
        self.fold_from_epoch = Some(e);
        self
    }

    /// Overrides the shuffling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn lr_at(&self, epoch: usize) -> f32 {
        let mut lr = self.initial_lr;
        for &(e, v) in &self.lr_schedule {
            if epoch >= e {
                lr = v;
            }
        }
        lr
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy measured after the final epoch.
    pub final_train_accuracy: f32,
}

struct OptimizerBank {
    conv_w: Vec<Adam>,
    conv_b: Vec<Adam>,
    bn_gamma: Vec<Adam>,
    bn_beta: Vec<Adam>,
    linear_w: Adam,
    linear_b: Adam,
}

impl OptimizerBank {
    fn new(net: &QatNetwork, lr: f32) -> Self {
        OptimizerBank {
            conv_w: net
                .blocks()
                .iter()
                .map(|b| Adam::new(lr, b.conv().weights().len()))
                .collect(),
            conv_b: net
                .blocks()
                .iter()
                .map(|b| Adam::new(lr, b.conv().bias().len()))
                .collect(),
            bn_gamma: net
                .blocks()
                .iter()
                .map(|b| Adam::new(lr, b.bn().channels()))
                .collect(),
            bn_beta: net
                .blocks()
                .iter()
                .map(|b| Adam::new(lr, b.bn().channels()))
                .collect(),
            linear_w: Adam::new(lr, net.linear().weights().len()),
            linear_b: Adam::new(lr, net.linear().bias().len()),
        }
    }

    fn set_lr(&mut self, lr: f32) {
        for o in self
            .conv_w
            .iter_mut()
            .chain(&mut self.conv_b)
            .chain(&mut self.bn_gamma)
            .chain(&mut self.bn_beta)
        {
            o.set_learning_rate(lr);
        }
        self.linear_w.set_learning_rate(lr);
        self.linear_b.set_learning_rate(lr);
    }
}

/// Trains the network in place, returning per-epoch metrics.
///
/// Works in both float and fake-quant modes; the schedule hooks
/// (BN freeze, folding) fire at the configured epochs.
pub fn train(net: &mut QatNetwork, dataset: &Dataset, cfg: &TrainConfig) -> TrainReport {
    let mut bank = OptimizerBank::new(net, cfg.initial_lr);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if let Some(freeze_after) = cfg.bn_freeze_after {
            if epoch == freeze_after {
                net.freeze_batch_norms();
            }
        }
        if let Some(fold_from) = cfg.fold_from_epoch {
            if epoch == fold_from {
                net.set_fold_bn(true);
            }
        }
        bank.set_lr(cfg.lr_at(epoch));
        let mut loss_sum = 0.0f64;
        let batches = dataset.epoch_batches(cfg.batch_size, cfg.seed.wrapping_add(epoch as u64));
        let n_batches = batches.len().max(1);
        for batch in &batches {
            let (logits, cache) = net.forward_train(&batch.images);
            let (loss, dlogits) = cross_entropy(&logits, &batch.labels);
            loss_sum += loss as f64;
            let grads = net.backward(&dlogits, &cache);
            apply_gradients(net, &mut bank, &grads, cfg);
        }
        epoch_losses.push((loss_sum / n_batches as f64) as f32);
    }
    let final_train_accuracy = evaluate(net, dataset);
    TrainReport {
        epoch_losses,
        final_train_accuracy,
    }
}

fn apply_gradients(
    net: &mut QatNetwork,
    bank: &mut OptimizerBank,
    grads: &crate::qat::Gradients,
    cfg: &TrainConfig,
) {
    for i in 0..net.num_blocks() {
        {
            let block = &mut net.blocks_mut()[i];
            let mut wbuf = block.conv().weights().data().to_vec();
            bank.conv_w[i].step(&mut wbuf, grads.conv_w[i].data());
            block
                .conv_mut()
                .weights_mut()
                .data_mut()
                .copy_from_slice(&wbuf);
            let mut bbuf = block.conv().bias().to_vec();
            bank.conv_b[i].step(&mut bbuf, &grads.conv_b[i]);
            block.conv_mut().bias_mut().copy_from_slice(&bbuf);
        }
        let frozen = net.blocks()[i].bn().is_frozen();
        if !frozen && !grads.bn_gamma[i].is_empty() {
            let block = &mut net.blocks_mut()[i];
            let mut g = block.bn().gamma().to_vec();
            bank.bn_gamma[i].step(&mut g, &grads.bn_gamma[i]);
            block.bn_mut().gamma_mut().copy_from_slice(&g);
            let mut b = block.bn().beta().to_vec();
            bank.bn_beta[i].step(&mut b, &grads.bn_beta[i]);
            block.bn_mut().beta_mut().copy_from_slice(&b);
        }
        // PACT clips (plain SGD + decay, cleared by apply_grad).
        net.blocks_mut()[i]
            .act_mut()
            .clip_mut()
            .apply_grad(cfg.pact_lr, cfg.pact_decay);
        if let Some(clip) = net.blocks_mut()[i].weight_clip_mut() {
            clip.apply_grad(cfg.pact_lr, cfg.pact_decay);
        }
    }
    // Residual-join PACT clips learn like the block activations.
    for r in net.residuals_mut() {
        r.act_mut()
            .clip_mut()
            .apply_grad(cfg.pact_lr, cfg.pact_decay);
    }
    let mut lw = net.linear().weights().data().to_vec();
    bank.linear_w.step(&mut lw, grads.linear_w.data());
    net.linear_mut()
        .weights_mut()
        .data_mut()
        .copy_from_slice(&lw);
    let mut lb = net.linear().bias().to_vec();
    bank.linear_b.step(&mut lb, &grads.linear_b);
    net.linear_mut().bias_mut().copy_from_slice(&lb);
}

/// Classification accuracy of the network on a dataset (current mode).
pub fn evaluate(net: &QatNetwork, dataset: &Dataset) -> f32 {
    if dataset.is_empty() {
        return 0.0;
    }
    let batch = dataset.calibration_batch(dataset.len());
    let logits = net.forward(&batch.images);
    accuracy(&logits, &batch.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qat::MicroCnnSpec;
    use mixq_data::{DatasetSpec, SyntheticKind};
    use mixq_quant::Granularity;

    fn tiny_dataset() -> Dataset {
        // Orientation classification (horizontal vs vertical bars): the
        // class signal survives global average pooling, unlike position
        // tasks.
        DatasetSpec::new(SyntheticKind::Bars, 8, 8, 1, 2)
            .with_samples(96)
            .with_noise(0.02)
            .with_amplitude_base(1.0)
            .generate(13)
    }

    #[test]
    fn float_training_learns_blobs() {
        let ds = tiny_dataset();
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[6]);
        let mut net = QatNetwork::build(&spec, 21);
        let report = train(&mut net, &ds, &TrainConfig::fast(12));
        assert!(
            report.final_train_accuracy > 0.8,
            "float accuracy too low: {}",
            report.final_train_accuracy
        );
        // Loss decreased overall.
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
    }

    #[test]
    fn qat_training_learns_blobs_at_8bit() {
        let ds = tiny_dataset();
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[6]);
        let mut net = QatNetwork::build(&spec, 22);
        // Warm-start float, then QAT — the paper's flow.
        let _ = train(&mut net, &ds, &TrainConfig::fast(8));
        net.calibrate_input(ds.images());
        net.enable_fake_quant(Granularity::PerChannel);
        let report = train(&mut net, &ds, &TrainConfig::fast(6));
        assert!(
            report.final_train_accuracy > 0.8,
            "8-bit QAT accuracy too low: {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn lr_schedule_applies() {
        let cfg = TrainConfig::paper_recipe();
        assert_eq!(cfg.lr_at(0), 1e-4);
        assert_eq!(cfg.lr_at(5), 5e-5);
        assert_eq!(cfg.lr_at(7), 5e-5);
        assert_eq!(cfg.lr_at(8), 1e-5);
        assert_eq!(cfg.lr_at(9), 1e-5);
    }

    #[test]
    fn bn_freeze_hook_fires() {
        let ds = tiny_dataset();
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[4]);
        let mut net = QatNetwork::build(&spec, 3);
        let mut cfg = TrainConfig::fast(2);
        cfg.bn_freeze_after = Some(1);
        let _ = train(&mut net, &ds, &cfg);
        assert!(net.blocks()[0].bn().is_frozen());
    }

    #[test]
    fn folding_hook_fires() {
        let ds = tiny_dataset();
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[4]);
        let mut net = QatNetwork::build(&spec, 3);
        let cfg = TrainConfig::fast(3).with_folding_from(1);
        let _ = train(&mut net, &ds, &cfg);
        assert!(net.fold_bn());
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let ds = tiny_dataset().split(0.0, 0).train;
        let spec = MicroCnnSpec::new(8, 8, 1, 2, &[4]);
        let net = QatNetwork::build(&spec, 0);
        assert_eq!(evaluate(&net, &ds), 0.0);
    }
}
