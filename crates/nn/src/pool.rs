use mixq_tensor::{Shape, Tensor};

/// Global average pooling `(n, h, w, c) → (n, 1, 1, c)`, the layer between
/// MobileNetV1's last convolution and its classifier.
///
/// # Examples
///
/// ```
/// use mixq_nn::GlobalAvgPool;
/// use mixq_tensor::{Shape, Tensor};
///
/// let x = Tensor::from_vec(Shape::new(1, 2, 2, 1), vec![1.0, 2.0, 3.0, 4.0])?;
/// let y = GlobalAvgPool.forward(&x);
/// assert_eq!(y.data(), &[2.5]);
/// # Ok::<(), mixq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlobalAvgPool;

impl GlobalAvgPool {
    /// Forward pass: mean over the spatial dimensions.
    pub fn forward(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let s = x.shape();
        let mut y = Tensor::<f32>::zeros(Shape::new(s.n, 1, 1, s.c));
        let area = s.pixels() as f32;
        for n in 0..s.n {
            for yy in 0..s.h {
                for xx in 0..s.w {
                    for c in 0..s.c {
                        y.data_mut()[n * s.c + c] += x.at(n, yy, xx, c);
                    }
                }
            }
        }
        for v in y.data_mut() {
            *v /= area;
        }
        y
    }

    /// Backward pass: spread the gradient uniformly over the pooled window.
    pub fn backward(&self, input_shape: Shape, dy: &Tensor<f32>) -> Tensor<f32> {
        assert_eq!(dy.shape().c, input_shape.c, "channel count");
        assert_eq!(dy.shape().n, input_shape.n, "batch size");
        let mut dx = Tensor::<f32>::zeros(input_shape);
        let area = input_shape.pixels() as f32;
        for n in 0..input_shape.n {
            for yy in 0..input_shape.h {
                for xx in 0..input_shape.w {
                    for c in 0..input_shape.c {
                        *dx.at_mut(n, yy, xx, c) = dy.data()[n * input_shape.c + c] / area;
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_averages_per_channel() {
        let x = Tensor::from_vec(
            Shape::new(1, 2, 2, 2),
            vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0],
        )
        .unwrap();
        let y = GlobalAvgPool.forward(&x);
        assert_eq!(y.shape(), Shape::new(1, 1, 1, 2));
        assert_eq!(y.data(), &[2.5, 25.0]);
    }

    #[test]
    fn backward_distributes_uniformly() {
        let shape = Shape::new(1, 2, 2, 1);
        let dy = Tensor::from_vec(Shape::new(1, 1, 1, 1), vec![4.0]).unwrap();
        let dx = GlobalAvgPool.backward(shape, &dy);
        assert!(dx.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn gradient_check() {
        let x = Tensor::from_vec(Shape::new(1, 2, 2, 1), vec![1.0, -2.0, 3.0, 0.5]).unwrap();
        let y = GlobalAvgPool.forward(&x);
        let dy = y.clone();
        let dx = GlobalAvgPool.backward(x.shape(), &dy);
        let loss = |xs: &Tensor<f32>| -> f64 {
            GlobalAvgPool
                .forward(xs)
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64).powi(2))
                .sum()
        };
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps as f64);
            assert!((num - dx.data()[idx] as f64).abs() < 1e-4);
        }
    }

    #[test]
    fn batch_independence() {
        let x = Tensor::from_vec(Shape::new(2, 1, 2, 1), vec![1.0, 3.0, 10.0, 30.0]).unwrap();
        let y = GlobalAvgPool.forward(&x);
        assert_eq!(y.data(), &[2.0, 20.0]);
    }
}
