//! The Adam optimizer (the paper trains with Adam at 1e-4, decayed to 5e-5
//! and 1e-5 on a fixed schedule, §6).

/// Adam state for a single parameter tensor.
///
/// # Examples
///
/// ```
/// use mixq_nn::optim::Adam;
///
/// let mut opt = Adam::new(0.1, 2);
/// let mut params = vec![1.0f32, -1.0];
/// // Gradient of L = x·x/2 is x: repeated steps shrink the params.
/// for _ in 0..100 {
///     let grads: Vec<f32> = params.clone();
///     opt.step(&mut params, &grads);
/// }
/// assert!(params[0].abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates an optimizer for a parameter tensor of `len` elements with
    /// the given learning rate and default betas `(0.9, 0.999)`.
    pub fn new(lr: f32, len: usize) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (the §6 schedule decays it at fixed epochs).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree with the state.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "parameter length");
        assert_eq!(grads.len(), self.m.len(), "gradient length");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let mut opt = Adam::new(0.05, 1);
        let mut p = vec![5.0f32];
        for _ in 0..500 {
            let g = vec![2.0 * (p[0] - 3.0)]; // L = (p-3)^2
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 0.05, "converged to {}", p[0]);
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // Adam's bias correction makes the very first step ≈ lr·sign(g).
        let mut opt = Adam::new(0.1, 1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[123.0]);
        assert!((p[0] + 0.1).abs() < 1e-3);
    }

    #[test]
    fn lr_update_and_counters() {
        let mut opt = Adam::new(1e-4, 2);
        assert_eq!(opt.learning_rate(), 1e-4);
        opt.set_learning_rate(5e-5);
        assert_eq!(opt.learning_rate(), 5e-5);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut [0.0, 0.0], &[1.0, -1.0]);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let mut opt = Adam::new(0.1, 2);
        opt.step(&mut [0.0], &[1.0]);
    }
}
