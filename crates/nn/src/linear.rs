use mixq_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A fully-connected layer `y = W·x + b` over flattened `(n, 1, 1, c)`
/// activations.
///
/// Weights are stored `(out, 1, 1, in)` so the output dimension is the
/// leading axis, matching the per-channel quantization convention of
/// [`Conv2d`](crate::Conv2d).
///
/// # Examples
///
/// ```
/// use mixq_nn::Linear;
/// use mixq_tensor::{Shape, Tensor};
///
/// let lin = Linear::new(3, 2, 0);
/// let x = Tensor::<f32>::zeros(Shape::new(1, 1, 1, 3));
/// assert_eq!(lin.forward(&x).shape(), Shape::new(1, 1, 1, 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weights: Tensor<f32>,
    bias: Vec<f32>,
}

impl Linear {
    /// Creates a linear layer with Xavier-style uniform initialization.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let bound = (6.0 / (in_features + out_features) as f32).sqrt();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x11EA8));
        let shape = Shape::new(out_features, 1, 1, in_features);
        let data = (0..shape.volume())
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Linear {
            in_features,
            out_features,
            weights: Tensor::from_vec(shape, data).expect("consistent volume"),
            bias: vec![0.0; out_features],
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Weight tensor `(out, 1, 1, in)`.
    pub fn weights(&self) -> &Tensor<f32> {
        &self.weights
    }

    /// Mutable weight tensor.
    pub fn weights_mut(&mut self) -> &mut Tensor<f32> {
        &mut self.weights
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Forward with the layer's own weights.
    pub fn forward(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.forward_with(x, &self.weights)
    }

    /// Forward with externally supplied (e.g. fake-quantized) weights.
    ///
    /// # Panics
    ///
    /// Panics if feature counts disagree.
    pub fn forward_with(&self, x: &Tensor<f32>, weights: &Tensor<f32>) -> Tensor<f32> {
        assert_eq!(x.shape().item_volume(), self.in_features, "input features");
        assert_eq!(weights.shape(), self.weights.shape(), "weight shape");
        let n = x.shape().n;
        let mut y = Tensor::<f32>::zeros(Shape::new(n, 1, 1, self.out_features));
        for b in 0..n {
            let xrow = &x.data()[b * self.in_features..(b + 1) * self.in_features];
            for o in 0..self.out_features {
                let wrow = &weights.data()[o * self.in_features..(o + 1) * self.in_features];
                let mut acc = self.bias[o];
                for (xi, wi) in xrow.iter().zip(wrow) {
                    acc += xi * wi;
                }
                y.data_mut()[b * self.out_features + o] = acc;
            }
        }
        y
    }

    /// Backward pass; returns `(dx, dw, db)`.
    pub fn backward(
        &self,
        x: &Tensor<f32>,
        weights: &Tensor<f32>,
        dy: &Tensor<f32>,
    ) -> (Tensor<f32>, Tensor<f32>, Vec<f32>) {
        let n = x.shape().n;
        assert_eq!(dy.shape().item_volume(), self.out_features);
        let mut dx = Tensor::<f32>::zeros(x.shape());
        let mut dw = Tensor::<f32>::zeros(weights.shape());
        let mut db = vec![0.0f32; self.out_features];
        for b in 0..n {
            let xrow = &x.data()[b * self.in_features..(b + 1) * self.in_features];
            for o in 0..self.out_features {
                let g = dy.data()[b * self.out_features + o];
                if g == 0.0 {
                    continue;
                }
                db[o] += g;
                let wrow = &weights.data()[o * self.in_features..(o + 1) * self.in_features];
                let dwrow = &mut dw.data_mut()[o * self.in_features..(o + 1) * self.in_features];
                for i in 0..self.in_features {
                    dwrow[i] += g * xrow[i];
                }
                let dxrow = &mut dx.data_mut()[b * self.in_features..(b + 1) * self.in_features];
                for i in 0..self.in_features {
                    dxrow[i] += g * wrow[i];
                }
            }
        }
        (dx, dw, db)
    }

    /// MAC count for a batch of `n` items.
    pub fn macs(&self, n: usize) -> usize {
        n * self.in_features * self.out_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_weights_copy_input() {
        let mut lin = Linear::new(2, 2, 0);
        let mut w = Tensor::<f32>::zeros(Shape::new(2, 1, 1, 2));
        *w.at_mut(0, 0, 0, 0) = 1.0;
        *w.at_mut(1, 0, 0, 1) = 1.0;
        lin.weights_mut().data_mut().copy_from_slice(w.data());
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 2), vec![3.0, -4.0]).unwrap();
        assert_eq!(lin.forward(&x).data(), &[3.0, -4.0]);
    }

    #[test]
    fn bias_applied() {
        let mut lin = Linear::new(1, 1, 0);
        lin.weights_mut().data_mut()[0] = 0.0;
        lin.bias_mut()[0] = 5.0;
        let x = Tensor::from_vec(Shape::vector(1), vec![100.0]).unwrap();
        assert_eq!(lin.forward(&x).data(), &[5.0]);
    }

    #[test]
    fn batch_forward() {
        let mut lin = Linear::new(2, 1, 0);
        lin.weights_mut().data_mut().copy_from_slice(&[1.0, 2.0]);
        let x = Tensor::from_vec(Shape::new(2, 1, 1, 2), vec![1.0, 1.0, 2.0, 0.5]).unwrap();
        let y = lin.forward(&x);
        assert_eq!(y.data(), &[3.0, 3.0]);
    }

    #[test]
    fn gradient_check() {
        let lin = Linear::new(3, 2, 7);
        let x =
            Tensor::from_vec(Shape::new(2, 1, 1, 3), vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]).unwrap();
        let y = lin.forward(&x);
        let dy = y.clone(); // L = sum(y^2)/2
        let (dx, dw, db) = lin.backward(&x, lin.weights(), &dy);
        let loss = |l: &Linear, xs: &Tensor<f32>| -> f64 {
            l.forward(xs)
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64).powi(2))
                .sum()
        };
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&lin, &xp) - loss(&lin, &xm)) / (2.0 * eps as f64);
            assert!((num - dx.data()[idx] as f64).abs() < 1e-2);
        }
        for idx in 0..6 {
            let mut lp = lin.clone();
            lp.weights_mut().data_mut()[idx] += eps;
            let mut lm = lin.clone();
            lm.weights_mut().data_mut()[idx] -= eps;
            let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps as f64);
            assert!(
                (num - dw.data()[idx] as f64).abs() < 1e-2 * (1.0 + dw.data()[idx].abs() as f64)
            );
        }
        for o in 0..2 {
            let mut lp = lin.clone();
            lp.bias_mut()[o] += eps;
            let mut lm = lin.clone();
            lm.bias_mut()[o] -= eps;
            let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps as f64);
            assert!((num - db[o] as f64).abs() < 1e-2 * (1.0 + db[o].abs() as f64));
        }
    }

    #[test]
    fn macs_counting() {
        let lin = Linear::new(1024, 1000, 0);
        assert_eq!(lin.macs(1), 1_024_000);
    }
}
