use mixq_tensor::Tensor;

/// Per-channel batch normalization over NHWC feature maps.
///
/// Training mode uses batch statistics and updates running estimates;
/// evaluation (and the paper's post-epoch-1 "frozen" mode, §6) uses the
/// stored running statistics. The ICN conversion (paper Eq. 3) reads the
/// frozen `(µ, σ, γ, β)` directly from this layer.
///
/// # Examples
///
/// ```
/// use mixq_nn::BatchNorm;
/// use mixq_tensor::{Shape, Tensor};
///
/// let mut bn = BatchNorm::new(2);
/// let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 10.0, 3.0, 30.0])?;
/// let (y, _) = bn.forward_train(&x);
/// // Batch-normalized output has ~zero mean per channel.
/// assert!(y.data()[0] + y.data()[2] < 1e-5);
/// # Ok::<(), mixq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    frozen: bool,
}

/// Cache produced by the training-mode forward pass, consumed by backward.
#[derive(Debug, Clone)]
pub struct BnCache {
    normalized: Tensor<f32>,
    batch_std: Vec<f32>,
    count: usize,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `channels` with γ=1, β=0.
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.9,
            eps: 1e-5,
            frozen: false,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Scale parameters γ.
    pub fn gamma(&self) -> &[f32] {
        &self.gamma
    }

    /// Mutable γ (used by tests and by deliberate re-initialization).
    pub fn gamma_mut(&mut self) -> &mut [f32] {
        &mut self.gamma
    }

    /// Shift parameters β.
    pub fn beta(&self) -> &[f32] {
        &self.beta
    }

    /// Mutable β.
    pub fn beta_mut(&mut self) -> &mut [f32] {
        &mut self.beta
    }

    /// Running mean µ.
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running standard deviation σ (with ε folded in), channel-wise.
    pub fn running_std(&self) -> Vec<f32> {
        self.running_var
            .iter()
            .map(|v| (v + self.eps).sqrt())
            .collect()
    }

    /// Whether parameters and statistics are frozen (§6 freezes after the
    /// first epoch).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Freezes parameters and running statistics.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Training-mode forward. When frozen, falls back to inference mode
    /// (running statistics) and produces a cache that backward understands.
    pub fn forward_train(&mut self, x: &Tensor<f32>) -> (Tensor<f32>, BnCache) {
        let c = self.channels();
        assert_eq!(x.shape().c, c, "channel count");
        let count = x.len() / c;
        let (mean, var) = if self.frozen {
            (self.running_mean.clone(), self.running_var.clone())
        } else {
            let mut mean = vec![0.0f64; c];
            for (i, &v) in x.data().iter().enumerate() {
                mean[i % c] += v as f64;
            }
            for m in &mut mean {
                *m /= count as f64;
            }
            let mut var = vec![0.0f64; c];
            for (i, &v) in x.data().iter().enumerate() {
                let d = v as f64 - mean[i % c];
                var[i % c] += d * d;
            }
            for v in &mut var {
                *v /= count as f64;
            }
            let mean: Vec<f32> = mean.iter().map(|&m| m as f32).collect();
            let var: Vec<f32> = var.iter().map(|&v| v as f32).collect();
            // Update running statistics.
            for i in 0..c {
                self.running_mean[i] =
                    self.momentum * self.running_mean[i] + (1.0 - self.momentum) * mean[i];
                self.running_var[i] =
                    self.momentum * self.running_var[i] + (1.0 - self.momentum) * var[i];
            }
            (mean, var)
        };
        let std: Vec<f32> = var.iter().map(|v| (v + self.eps).sqrt()).collect();
        let mut normalized = Tensor::<f32>::zeros(x.shape());
        let mut y = Tensor::<f32>::zeros(x.shape());
        for (i, &v) in x.data().iter().enumerate() {
            let ch = i % c;
            let n = (v - mean[ch]) / std[ch];
            normalized.data_mut()[i] = n;
            y.data_mut()[i] = self.gamma[ch] * n + self.beta[ch];
        }
        (
            y,
            BnCache {
                normalized,
                batch_std: std,
                count,
            },
        )
    }

    /// Inference-mode forward using running statistics.
    pub fn forward_eval(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let c = self.channels();
        assert_eq!(x.shape().c, c, "channel count");
        let std = self.running_std();
        let mut y = Tensor::<f32>::zeros(x.shape());
        for (i, &v) in x.data().iter().enumerate() {
            let ch = i % c;
            y.data_mut()[i] =
                self.gamma[ch] * (v - self.running_mean[ch]) / std[ch] + self.beta[ch];
        }
        y
    }

    /// Backward pass; returns `(dx, dgamma, dbeta)`.
    ///
    /// Uses the full batch-norm gradient when statistics came from the batch;
    /// when frozen, the statistics are constants and the gradient reduces to
    /// a per-channel scale.
    pub fn backward(&self, dy: &Tensor<f32>, cache: &BnCache) -> (Tensor<f32>, Vec<f32>, Vec<f32>) {
        let c = self.channels();
        let m = cache.count as f32;
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for (i, &g) in dy.data().iter().enumerate() {
            let ch = i % c;
            dgamma[ch] += g * cache.normalized.data()[i];
            dbeta[ch] += g;
        }
        let mut dx = Tensor::<f32>::zeros(dy.shape());
        if self.frozen {
            for (i, &g) in dy.data().iter().enumerate() {
                let ch = i % c;
                dx.data_mut()[i] = g * self.gamma[ch] / cache.batch_std[ch];
            }
        } else {
            // dx = γ/σ · (dy − mean(dy) − x̂·mean(dy·x̂))
            let mut mean_dy = vec![0.0f32; c];
            let mut mean_dy_xhat = vec![0.0f32; c];
            for (i, &g) in dy.data().iter().enumerate() {
                let ch = i % c;
                mean_dy[ch] += g;
                mean_dy_xhat[ch] += g * cache.normalized.data()[i];
            }
            for ch in 0..c {
                mean_dy[ch] /= m;
                mean_dy_xhat[ch] /= m;
            }
            for (i, &g) in dy.data().iter().enumerate() {
                let ch = i % c;
                dx.data_mut()[i] = self.gamma[ch] / cache.batch_std[ch]
                    * (g - mean_dy[ch] - cache.normalized.data()[i] * mean_dy_xhat[ch]);
            }
        }
        (dx, dgamma, dbeta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_tensor::Shape;

    #[test]
    fn train_forward_normalizes_batch() {
        let mut bn = BatchNorm::new(1);
        let x = Tensor::from_vec(Shape::new(4, 1, 1, 1), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let (y, _) = bn.forward_train(&x);
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        let var: f32 = y.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gamma_beta_applied() {
        let mut bn = BatchNorm::new(1);
        bn.gamma_mut()[0] = 2.0;
        bn.beta_mut()[0] = 1.0;
        let x = Tensor::from_vec(Shape::new(2, 1, 1, 1), vec![-1.0, 1.0]).unwrap();
        let (y, _) = bn.forward_train(&x);
        // Normalized = ±1 → y = ±2 + 1.
        assert!((y.data()[0] - (-1.0)).abs() < 1e-3);
        assert!((y.data()[1] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn running_stats_converge_to_data() {
        let mut bn = BatchNorm::new(1);
        let x = Tensor::from_vec(Shape::new(4, 1, 1, 1), vec![4.0, 6.0, 4.0, 6.0]).unwrap();
        for _ in 0..200 {
            let _ = bn.forward_train(&x);
        }
        assert!((bn.running_mean()[0] - 5.0).abs() < 0.05);
        assert!((bn.running_var[0] - 1.0).abs() < 0.05);
        // Eval mode then reproduces ~the train output.
        let y = bn.forward_eval(&x);
        assert!((y.data()[0] + 1.0).abs() < 0.05);
    }

    #[test]
    fn frozen_uses_running_stats_and_stops_updates() {
        let mut bn = BatchNorm::new(1);
        bn.running_mean[0] = 10.0;
        bn.running_var[0] = 4.0;
        bn.freeze();
        assert!(bn.is_frozen());
        let x = Tensor::from_vec(Shape::new(2, 1, 1, 1), vec![10.0, 14.0]).unwrap();
        let (y, _) = bn.forward_train(&x);
        // (10-10)/2=0, (14-10)/2=2.
        assert!((y.data()[0] - 0.0).abs() < 1e-3);
        assert!((y.data()[1] - 2.0).abs() < 1e-3);
        assert_eq!(bn.running_mean()[0], 10.0, "stats must not move");
    }

    #[test]
    fn backward_gradient_check_unfrozen() {
        let mut bn = BatchNorm::new(2);
        bn.gamma_mut().copy_from_slice(&[1.5, 0.5]);
        bn.beta_mut().copy_from_slice(&[0.1, -0.2]);
        let x =
            Tensor::from_vec(Shape::new(3, 1, 1, 2), vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.0]).unwrap();
        let (y, cache) = bn.forward_train(&x);
        let dy = y.clone(); // L = sum(y^2)/2
        let (dx, dgamma, dbeta) = bn.backward(&dy, &cache);

        let loss = |bnc: &BatchNorm, xs: &Tensor<f32>| -> f64 {
            let mut b = bnc.clone();
            let (y, _) = b.forward_train(xs);
            y.data().iter().map(|&v| 0.5 * (v as f64).powi(2)).sum()
        };
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&bn, &xp) - loss(&bn, &xm)) / (2.0 * eps as f64);
            let ana = dx.data()[idx] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dx[{idx}] numeric {num} vs analytic {ana}"
            );
        }
        for ch in 0..2 {
            let mut bp = bn.clone();
            bp.gamma_mut()[ch] += eps;
            let mut bm = bn.clone();
            bm.gamma_mut()[ch] -= eps;
            let num = (loss(&bp, &x) - loss(&bm, &x)) / (2.0 * eps as f64);
            assert!(
                (num - dgamma[ch] as f64).abs() < 1e-2 * (1.0 + dgamma[ch].abs() as f64),
                "dgamma[{ch}]"
            );
            let mut bp = bn.clone();
            bp.beta_mut()[ch] += eps;
            let mut bm = bn.clone();
            bm.beta_mut()[ch] -= eps;
            let num = (loss(&bp, &x) - loss(&bm, &x)) / (2.0 * eps as f64);
            assert!(
                (num - dbeta[ch] as f64).abs() < 1e-2 * (1.0 + dbeta[ch].abs() as f64),
                "dbeta[{ch}]"
            );
        }
    }

    #[test]
    fn backward_frozen_is_plain_scale() {
        let mut bn = BatchNorm::new(1);
        bn.gamma_mut()[0] = 3.0;
        bn.running_var[0] = 8.0; // σ = sqrt(8 + eps)
        bn.freeze();
        let x = Tensor::from_vec(Shape::new(2, 1, 1, 1), vec![1.0, 2.0]).unwrap();
        let (_, cache) = bn.forward_train(&x);
        let dy = Tensor::from_vec(Shape::new(2, 1, 1, 1), vec![1.0, 1.0]).unwrap();
        let (dx, _, _) = bn.backward(&dy, &cache);
        let expected = 3.0 / (8.0f32 + 1e-5).sqrt();
        assert!((dx.data()[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn running_std_includes_eps() {
        let bn = BatchNorm::new(1);
        assert!((bn.running_std()[0] - 1.0).abs() < 1e-4);
    }
}
