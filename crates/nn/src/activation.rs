use mixq_quant::observer::PactClip;
use mixq_quant::{BitWidth, QuantParams};
use mixq_tensor::Tensor;

/// The PACT fake-quantized activation module (paper §3): a learned clip
/// `y = clamp(x, 0, b)` followed by `Q`-bit uniform quantization with floor
/// rounding, `S = b/(2^Q − 1)`.
///
/// With quantization disabled the module degenerates to the clipped-ReLU
/// used by the float baseline `f(x)`; the clip `b` is learned by
/// backpropagation in both modes (straight-through estimator through the
/// quantizer).
///
/// # Examples
///
/// ```
/// use mixq_nn::PactQuantAct;
/// use mixq_quant::BitWidth;
/// use mixq_tensor::{Shape, Tensor};
///
/// let act = PactQuantAct::new(4.0, BitWidth::W2, true);
/// let x = Tensor::from_vec(Shape::vector(3), vec![-1.0, 1.9, 9.0])?;
/// let (y, _) = act.forward(&x);
/// // S = 4/3; 1.9 → floor(1.425)·S = 1·S ≈ 1.333; 9.0 saturates at b=4... code 3.
/// assert_eq!(y.data()[0], 0.0);
/// assert!((y.data()[1] - 4.0 / 3.0).abs() < 1e-6);
/// assert!((y.data()[2] - 4.0).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PactQuantAct {
    clip: PactClip,
    bits: BitWidth,
    quant_enabled: bool,
}

/// Cache for the backward pass: the pre-activation input.
#[derive(Debug, Clone)]
pub struct ActCache {
    input: Tensor<f32>,
}

impl PactQuantAct {
    /// Creates an activation with initial clip `b`, precision `bits`, and
    /// quantization on/off (off = float clipped-ReLU baseline).
    pub fn new(initial_clip: f32, bits: BitWidth, quant_enabled: bool) -> Self {
        PactQuantAct {
            clip: PactClip::new(initial_clip),
            bits,
            quant_enabled,
        }
    }

    /// The learned PACT clip.
    pub fn clip(&self) -> &PactClip {
        &self.clip
    }

    /// Mutable access to the clip (the optimizer applies its gradient).
    pub fn clip_mut(&mut self) -> &mut PactClip {
        &mut self.clip
    }

    /// Activation precision `Q`.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Changes the precision (used by the memory-driven bit assignment).
    pub fn set_bits(&mut self, bits: BitWidth) {
        self.bits = bits;
    }

    /// Whether fake quantization is applied.
    pub fn quant_enabled(&self) -> bool {
        self.quant_enabled
    }

    /// Enables/disables fake quantization.
    pub fn set_quant_enabled(&mut self, enabled: bool) {
        self.quant_enabled = enabled;
    }

    /// The floor-rounding quantizer for the current clip
    /// (`quant_act` of §3) — what the ICN conversion reads as `S_o`/`S_x`.
    pub fn quant_params(&self) -> QuantParams {
        QuantParams::from_pact_clip(self.clip.bound(), self.bits)
    }

    /// Forward pass; returns the activation and a cache for backward.
    pub fn forward(&self, x: &Tensor<f32>) -> (Tensor<f32>, ActCache) {
        let y = if self.quant_enabled {
            let q = self.quant_params();
            x.map(|v| q.fake_quantize(v))
        } else {
            let b = self.clip.bound();
            x.map(|v| v.clamp(0.0, b))
        };
        (y, ActCache { input: x.clone() })
    }

    /// Backward pass; returns `dx` and accumulates the PACT clip gradient
    /// internally (applied later via [`PactClip::apply_grad`]).
    ///
    /// Straight-through estimator: the quantizer is treated as identity
    /// inside `(0, b)`; the clip gradient is `Σ dy` over saturated inputs.
    pub fn backward(&mut self, dy: &Tensor<f32>, cache: &ActCache) -> Tensor<f32> {
        let mut dx = Tensor::<f32>::zeros(dy.shape());
        let mut db = 0.0f32;
        for (i, (&g, &x)) in dy.data().iter().zip(cache.input.data()).enumerate() {
            dx.data_mut()[i] = g * self.clip.input_grad_mask(x);
            db += g * self.clip.bound_grad(x);
        }
        self.clip.accumulate_grad(db);
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_tensor::Shape;

    #[test]
    fn float_mode_is_clipped_relu() {
        let act = PactQuantAct::new(2.0, BitWidth::W8, false);
        let x = Tensor::from_vec(Shape::vector(3), vec![-1.0, 1.0, 5.0]).unwrap();
        let (y, _) = act.forward(&x);
        assert_eq!(y.data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn quant_mode_floors_to_grid() {
        let act = PactQuantAct::new(3.0, BitWidth::W2, true);
        // S = 1.0; 1.99 floors to 1.0 (round-to-nearest would give 2.0).
        let x = Tensor::from_vec(Shape::vector(2), vec![1.99, 2.5]).unwrap();
        let (y, _) = act.forward(&x);
        assert_eq!(y.data(), &[1.0, 2.0]);
    }

    #[test]
    fn backward_masks_saturated_regions() {
        let mut act = PactQuantAct::new(2.0, BitWidth::W8, true);
        let x = Tensor::from_vec(Shape::vector(3), vec![-1.0, 1.0, 5.0]).unwrap();
        let (_, cache) = act.forward(&x);
        let dy = Tensor::from_vec(Shape::vector(3), vec![1.0, 1.0, 1.0]).unwrap();
        let dx = act.backward(&dy, &cache);
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0]);
        // Clip gradient accumulated only from the saturated element.
        assert_eq!(act.clip().grad(), 1.0);
    }

    #[test]
    fn clip_learns_via_sgd_step() {
        let mut act = PactQuantAct::new(2.0, BitWidth::W8, true);
        let x = Tensor::from_vec(Shape::vector(1), vec![10.0]).unwrap();
        let (_, cache) = act.forward(&x);
        let dy = Tensor::from_vec(Shape::vector(1), vec![-1.0]).unwrap();
        let _ = act.backward(&dy, &cache);
        act.clip_mut().apply_grad(0.1, 0.0);
        // Negative gradient on b ⇒ b grows.
        assert!(act.clip().bound() > 2.0);
    }

    #[test]
    fn set_bits_changes_grid() {
        let mut act = PactQuantAct::new(3.0, BitWidth::W8, true);
        act.set_bits(BitWidth::W2);
        assert_eq!(act.bits(), BitWidth::W2);
        assert!((act.quant_params().scale() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn quant_toggle() {
        let mut act = PactQuantAct::new(1.0, BitWidth::W2, false);
        assert!(!act.quant_enabled());
        act.set_quant_enabled(true);
        assert!(act.quant_enabled());
        let x = Tensor::from_vec(Shape::vector(1), vec![0.5]).unwrap();
        let (y, _) = act.forward(&x);
        // S = 1/3; floor(0.5/S)=1 → 1/3.
        assert!((y.data()[0] - 1.0 / 3.0).abs() < 1e-6);
    }
}
