//! Softmax cross-entropy loss for classification training.

use mixq_tensor::Tensor;

/// Numerically stable softmax over the channel dimension of `(n, 1, 1, c)`
/// logits.
///
/// # Examples
///
/// ```
/// use mixq_nn::loss::softmax;
/// use mixq_tensor::{Shape, Tensor};
///
/// let logits = Tensor::from_vec(Shape::vector(2), vec![0.0, 0.0])?;
/// let p = softmax(&logits);
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// # Ok::<(), mixq_tensor::TensorError>(())
/// ```
pub fn softmax(logits: &Tensor<f32>) -> Tensor<f32> {
    let c = logits.shape().c;
    assert!(c > 0, "need at least one class");
    let n = logits.len() / c;
    let mut out = Tensor::<f32>::zeros(logits.shape());
    for b in 0..n {
        let row = &logits.data()[b * c..(b + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (i, e) in exps.iter().enumerate() {
            out.data_mut()[b * c + i] = e / sum;
        }
    }
    out
}

/// Mean softmax cross-entropy loss and its gradient w.r.t. the logits.
///
/// Returns `(loss, dlogits)` where `dlogits = (softmax − onehot)/batch`.
///
/// # Panics
///
/// Panics if a label is out of range or the label count mismatches the
/// batch size.
pub fn cross_entropy(logits: &Tensor<f32>, labels: &[usize]) -> (f32, Tensor<f32>) {
    let c = logits.shape().c;
    let n = logits.len() / c;
    assert_eq!(labels.len(), n, "one label per batch item");
    let probs = softmax(logits);
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    for (b, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        let p = probs.data()[b * c + label].max(1e-12);
        loss -= (p as f64).ln();
        grad.data_mut()[b * c + label] -= 1.0;
    }
    let scale = 1.0 / n as f32;
    for g in grad.data_mut() {
        *g *= scale;
    }
    ((loss / n as f64) as f32, grad)
}

/// Fraction of rows whose argmax equals the label.
pub fn accuracy(logits: &Tensor<f32>, labels: &[usize]) -> f32 {
    let c = logits.shape().c;
    let n = logits.len() / c;
    assert_eq!(labels.len(), n, "one label per batch item");
    let mut correct = 0usize;
    for (b, &label) in labels.iter().enumerate() {
        let row = &logits.data()[b * c..(b + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if pred == label {
            correct += 1;
        }
    }
    correct as f32 / n.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_tensor::Shape;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits =
            Tensor::from_vec(Shape::new(2, 1, 1, 3), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let p = softmax(&logits);
        for b in 0..2 {
            let sum: f32 = p.data()[b * 3..(b + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone in logits.
        assert!(p.data()[2] > p.data()[1]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(Shape::vector(2), vec![1000.0, 1001.0]).unwrap();
        let p = softmax(&a);
        assert!(p.data().iter().all(|v| v.is_finite()));
        let b = Tensor::from_vec(Shape::vector(2), vec![0.0, 1.0]).unwrap();
        let q = softmax(&b);
        for (x, y) in p.data().iter().zip(q.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(Shape::vector(2), vec![20.0, -20.0]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::from_vec(Shape::vector(4), vec![0.0; 4]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_check() {
        let logits =
            Tensor::from_vec(Shape::new(2, 1, 1, 3), vec![0.3, -0.1, 0.5, 1.0, 0.0, -1.0]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (lossp, _) = cross_entropy(&lp, &labels);
            let (lossm, _) = cross_entropy(&lm, &labels);
            let num = (lossp - lossm) / (2.0 * eps);
            assert!(
                (num - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: numeric {num} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(Shape::new(2, 1, 1, 2), vec![2.0, 1.0, 0.0, 3.0]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Tensor::from_vec(Shape::vector(2), vec![0.0, 0.0]).unwrap();
        let _ = cross_entropy(&logits, &[5]);
    }
}
