//! # mixq-nn
//!
//! Training substrate for the paper's fake-quantized graphs (`g(x)` in
//! Fig. 1): float and fake-quantized layers with hand-written backward
//! passes, the Adam optimizer, and the quantization-aware training (QAT)
//! loop of §6.
//!
//! The paper trains MobileNetV1 on ImageNet with PyTorch; this crate
//! provides the same mechanisms (PACT activations, per-layer/per-channel
//! weight fake-quantization with straight-through estimators, optional
//! batch-norm folding, frozen-BN schedule) at a scale that trains in seconds
//! on a CPU, which is what the accuracy-shape experiments in
//! `EXPERIMENTS.md` use.
//!
//! Layer inventory: [`Conv2d`] (standard + depthwise), [`BatchNorm`],
//! [`Linear`], [`GlobalAvgPool`], [`PactQuantAct`]; losses in [`loss`];
//! [`Adam`](optim::Adam) in [`optim`]; the assembled QAT network in [`qat`] and the
//! training loop in [`train`].
//!
//! # Examples
//!
//! ```
//! use mixq_nn::qat::{MicroCnnSpec, QatNetwork};
//! use mixq_tensor::{Shape, Tensor};
//!
//! // A float-mode micro CNN: 2 conv blocks + linear head.
//! let spec = MicroCnnSpec::new(8, 8, 1, 4, &[4, 8]);
//! let net = QatNetwork::build(&spec, 42);
//! let x = Tensor::<f32>::zeros(Shape::new(2, 8, 8, 1));
//! let logits = net.forward(&x);
//! assert_eq!(logits.shape().c, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The backward passes index several tensors with one loop variable; the
// iterator rewrite clippy suggests obscures the stencil arithmetic.
#![allow(clippy::needless_range_loop)]

mod activation;
mod batchnorm;
mod conv;
mod linear;
pub mod loss;
pub mod optim;
mod pool;
pub mod qat;
pub mod train;

pub use activation::PactQuantAct;
pub use batchnorm::BatchNorm;
pub use conv::{Conv2d, ConvKind};
pub use linear::Linear;
pub use pool::GlobalAvgPool;
