//! # mixq-data
//!
//! Synthetic image-classification datasets standing in for ImageNet.
//!
//! The paper evaluates on ImageNet-1k, which cannot be redistributed; the
//! quantization *mechanisms* under study, however, are dataset-independent.
//! This crate generates procedural multi-class image tasks whose statistics
//! deliberately exercise the failure mode the paper analyses:
//!
//! * **per-channel amplitude diversity** — channels carry signals at very
//!   different magnitudes, so batch-norm learns per-channel scales spanning
//!   orders of magnitude. Folding those scales into per-layer (PL)
//!   quantized weights at INT4 then destroys small-scale channels, which is
//!   exactly why the paper's `PL+FB INT4` training collapses (Table 2) and
//!   the ICN layer is needed.
//! * **enough class structure** that a micro-CNN reaches high accuracy in
//!   seconds of CPU training, so quantization-induced degradation is
//!   measurable.
//!
//! See `DESIGN.md` ("Substitutions") for the full rationale.
//!
//! # Examples
//!
//! ```
//! use mixq_data::{DatasetSpec, SyntheticKind};
//!
//! let ds = DatasetSpec::new(SyntheticKind::Gratings, 8, 8, 2, 4)
//!     .with_samples(64)
//!     .generate(42);
//! assert_eq!(ds.len(), 64);
//! assert_eq!(ds.num_classes(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod generator;

pub use dataset::{Batch, Dataset, Split};
pub use generator::{DatasetSpec, SyntheticKind};
