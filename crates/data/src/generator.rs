use std::f32::consts::PI;
use std::fmt;

use mixq_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Dataset;

/// The family of procedural pattern used to define classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SyntheticKind {
    /// Oriented sinusoidal gratings; class = orientation/frequency pair.
    /// Smooth, texture-like — the closest analogue to natural-image
    /// statistics among the generators.
    #[default]
    Gratings,
    /// Gaussian blobs at class-specific locations; easy, nearly linearly
    /// separable — useful for fast smoke tests.
    Blobs,
    /// Axis-aligned bars (horizontal/vertical/diagonal); forces the network
    /// to learn small convolution filters.
    Bars,
    /// Each channel independently carries one *bit* of the class label as a
    /// bar orientation (bit 0 → vertical, 1 → horizontal), so the class is
    /// only decodable by reading **every** channel. Combined with the
    /// per-channel amplitude scaling this is the folding stress test: a
    /// quantizer that crushes low-amplitude channels provably loses the
    /// corresponding class bits (accuracy falls towards 2^-(lost bits)).
    /// Requires `num_classes ≤ 2^channels`.
    ChannelBits,
}

impl fmt::Display for SyntheticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntheticKind::Gratings => write!(f, "gratings"),
            SyntheticKind::Blobs => write!(f, "blobs"),
            SyntheticKind::Bars => write!(f, "bars"),
            SyntheticKind::ChannelBits => write!(f, "channel-bits"),
        }
    }
}

/// Builder for a synthetic dataset.
///
/// Channel `c` of every image is scaled by `amplitude_base^c`, giving the
/// per-channel magnitude diversity that makes batch-norm learn wildly
/// different per-channel scales (see crate docs — this is what makes the
/// paper's PL+FB INT4 collapse reproducible on synthetic data).
///
/// # Examples
///
/// ```
/// use mixq_data::{DatasetSpec, SyntheticKind};
///
/// let ds = DatasetSpec::new(SyntheticKind::Bars, 8, 8, 3, 4)
///     .with_samples(128)
///     .with_noise(0.05)
///     .with_amplitude_base(4.0)
///     .generate(7);
/// assert_eq!(ds.sample_shape().c, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    kind: SyntheticKind,
    height: usize,
    width: usize,
    channels: usize,
    num_classes: usize,
    samples: usize,
    noise: f32,
    amplitude_base: f32,
}

impl DatasetSpec {
    /// Creates a spec for `num_classes` classes of `h × w × c` images.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the class count is zero.
    pub fn new(
        kind: SyntheticKind,
        height: usize,
        width: usize,
        channels: usize,
        num_classes: usize,
    ) -> Self {
        assert!(height > 0 && width > 0 && channels > 0, "empty image shape");
        assert!(num_classes >= 2, "need at least two classes");
        if kind == SyntheticKind::ChannelBits {
            assert!(
                num_classes <= 1 << channels,
                "ChannelBits encodes the class across channels: need num_classes <= 2^channels"
            );
        }
        DatasetSpec {
            kind,
            height,
            width,
            channels,
            num_classes,
            samples: 256,
            noise: 0.1,
            amplitude_base: 3.0,
        }
    }

    /// Sets the number of samples (default 256).
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Sets the additive Gaussian noise level (default 0.1).
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise.max(0.0);
        self
    }

    /// Sets the per-channel amplitude base (default 3.0): channel `c` is
    /// scaled by `base^c`. Use 1.0 for homogeneous channels.
    pub fn with_amplitude_base(mut self, base: f32) -> Self {
        assert!(base > 0.0, "amplitude base must be positive");
        self.amplitude_base = base;
        self
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = Shape::new(self.samples, self.height, self.width, self.channels);
        let mut images = Tensor::<f32>::zeros(shape);
        let mut labels = Vec::with_capacity(self.samples);
        for n in 0..self.samples {
            let class = rng.random_range(0..self.num_classes);
            labels.push(class);
            self.render(&mut images, n, class, &mut rng);
        }
        Dataset::new(images, labels, self.num_classes).expect("spec produces consistent data")
    }

    fn channel_amp(&self, c: usize) -> f32 {
        self.amplitude_base.powi(c as i32)
    }

    fn render(&self, images: &mut Tensor<f32>, n: usize, class: usize, rng: &mut StdRng) {
        let (h, w) = (self.height, self.width);
        // Random phase/position jitter so classes are distributions, not
        // single templates.
        let jitter_x = rng.random_range(0.0..1.0f32);
        let jitter_y = rng.random_range(0.0..1.0f32);
        if self.kind == SyntheticKind::ChannelBits {
            for y in 0..h {
                for x in 0..w {
                    let u = (x as f32 + 0.5) / w as f32;
                    let v = (y as f32 + 0.5) / h as f32;
                    for c in 0..self.channels {
                        let bit = (class >> c) & 1;
                        let stripe = if bit == 0 { u } else { v };
                        let pos = (stripe * 3.0 + jitter_x) % 1.0;
                        let base = if pos < 0.5 { 1.0 } else { -1.0 };
                        let noise = self.noise * gaussian(rng);
                        *images.at_mut(n, y, x, c) = self.channel_amp(c) * (base + noise);
                    }
                }
            }
            return;
        }
        for y in 0..h {
            for x in 0..w {
                let u = (x as f32 + 0.5) / w as f32;
                let v = (y as f32 + 0.5) / h as f32;
                let base = match self.kind {
                    SyntheticKind::Gratings => {
                        // Orientation and frequency both depend on the class.
                        let angle = PI * class as f32 / self.num_classes as f32;
                        let freq = 1.0 + (class % 3) as f32;
                        let t = u * angle.cos() + v * angle.sin();
                        (2.0 * PI * freq * (t + jitter_x * 0.25)).sin()
                    }
                    SyntheticKind::Blobs => {
                        // Class centroids on a circle.
                        let theta = 2.0 * PI * class as f32 / self.num_classes as f32;
                        let cx = 0.5 + 0.3 * theta.cos() + 0.1 * (jitter_x - 0.5);
                        let cy = 0.5 + 0.3 * theta.sin() + 0.1 * (jitter_y - 0.5);
                        let d2 = (u - cx).powi(2) + (v - cy).powi(2);
                        (-d2 / 0.02).exp()
                    }
                    SyntheticKind::Bars => {
                        // Class selects bar orientation; jitter selects offset.
                        let stripe = match class % 4 {
                            0 => u,
                            1 => v,
                            2 => (u + v) * 0.5,
                            _ => (u - v) * 0.5 + 0.5,
                        };
                        let pos = (stripe * 4.0 + jitter_x) % 1.0;
                        if pos < 0.5 {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                    SyntheticKind::ChannelBits => unreachable!("handled above"),
                };
                for c in 0..self.channels {
                    let noise = self.noise * gaussian(rng);
                    let amp = self.channel_amp(c);
                    *images.at_mut(n, y, x, c) = amp * (base + noise);
                }
            }
        }
    }
}

/// Standard normal sample via Box–Muller (rand 0.10 ships no distributions).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let spec = DatasetSpec::new(SyntheticKind::Gratings, 6, 6, 2, 3).with_samples(16);
        let a = spec.generate(11);
        let b = spec.generate(11);
        assert_eq!(a, b);
        let c = spec.generate(12);
        assert_ne!(a, c);
    }

    #[test]
    fn all_kinds_generate_valid_data() {
        for kind in [
            SyntheticKind::Gratings,
            SyntheticKind::Blobs,
            SyntheticKind::Bars,
        ] {
            let ds = DatasetSpec::new(kind, 8, 8, 2, 4)
                .with_samples(32)
                .generate(5);
            assert_eq!(ds.len(), 32);
            assert!(ds.images().data().iter().all(|v| v.is_finite()), "{kind}");
            assert!(ds.labels().iter().all(|&l| l < 4));
        }
    }

    #[test]
    fn channel_amplitudes_scale_geometrically() {
        let ds = DatasetSpec::new(SyntheticKind::Gratings, 8, 8, 3, 2)
            .with_samples(8)
            .with_noise(0.0)
            .with_amplitude_base(3.0)
            .generate(1);
        // RMS of channel 2 should be ~9x channel 0.
        let rms = |c: usize| -> f32 {
            let vals: Vec<f32> = ds.images().channel_iter(c).collect();
            (vals.iter().map(|v| v * v).sum::<f32>() / vals.len() as f32).sqrt()
        };
        let r0 = rms(0);
        let r2 = rms(2);
        assert!(
            (r2 / r0 - 9.0).abs() < 0.5,
            "expected ~9x amplitude ratio, got {}",
            r2 / r0
        );
    }

    #[test]
    fn homogeneous_amplitude_option() {
        let ds = DatasetSpec::new(SyntheticKind::Bars, 4, 4, 2, 2)
            .with_samples(4)
            .with_amplitude_base(1.0)
            .with_noise(0.0)
            .generate(2);
        let c0: Vec<f32> = ds.images().channel_iter(0).collect();
        let c1: Vec<f32> = ds.images().channel_iter(1).collect();
        assert_eq!(c0, c1);
    }

    #[test]
    fn classes_are_distinguishable_by_mean_template() {
        // Nearest-mean-template classification on noiseless gratings should
        // beat chance by a wide margin — sanity that classes differ.
        let spec = DatasetSpec::new(SyntheticKind::Gratings, 8, 8, 1, 4)
            .with_samples(200)
            .with_noise(0.0)
            .with_amplitude_base(1.0);
        let ds = spec.generate(3);
        let item = ds.sample_shape().item_volume();
        let mut templates = vec![vec![0.0f64; item]; 4];
        let mut counts = vec![0usize; 4];
        for i in 0..ds.len() {
            let l = ds.labels()[i];
            counts[l] += 1;
            for (t, &v) in templates[l]
                .iter_mut()
                .zip(&ds.images().data()[i * item..(i + 1) * item])
            {
                *t += v as f64;
            }
        }
        for (t, &n) in templates.iter_mut().zip(&counts) {
            for v in t.iter_mut() {
                *v /= n.max(1) as f64;
            }
        }
        let mut correct = 0;
        for i in 0..ds.len() {
            let img = &ds.images().data()[i * item..(i + 1) * item];
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da: f64 = templates[a]
                        .iter()
                        .zip(img)
                        .map(|(t, &v)| (t - v as f64).powi(2))
                        .sum();
                    let db: f64 = templates[b]
                        .iter()
                        .zip(img)
                        .map(|(t, &v)| (t - v as f64).powi(2))
                        .sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if best == ds.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / ds.len() as f32;
        assert!(acc > 0.6, "template accuracy {acc} too close to chance");
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn rejects_single_class() {
        let _ = DatasetSpec::new(SyntheticKind::Blobs, 4, 4, 1, 1);
    }

    #[test]
    fn gaussian_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn kind_display() {
        assert_eq!(SyntheticKind::Gratings.to_string(), "gratings");
        assert_eq!(SyntheticKind::ChannelBits.to_string(), "channel-bits");
    }

    #[test]
    fn channel_bits_encodes_class_per_channel() {
        let ds = DatasetSpec::new(SyntheticKind::ChannelBits, 8, 8, 2, 4)
            .with_samples(64)
            .with_noise(0.0)
            .with_amplitude_base(1.0)
            .generate(9);
        // Channel c of two samples agreeing on bit c must correlate
        // positively up to stripe jitter; a horizontal-bit channel must
        // vary along y and be constant along x (and vice versa).
        for i in 0..ds.len() {
            let class = ds.labels()[i];
            let img = ds.images().batch_item(i);
            for c in 0..2 {
                let bit = (class >> c) & 1;
                // Row/column variance tells the orientation apart.
                let mut col_var = 0.0f32;
                let mut row_var = 0.0f32;
                for a in 0..8 {
                    let col: Vec<f32> = (0..8).map(|b| img.at(0, b, a, c)).collect();
                    let row: Vec<f32> = (0..8).map(|b| img.at(0, a, b, c)).collect();
                    let mean_c = col.iter().sum::<f32>() / 8.0;
                    let mean_r = row.iter().sum::<f32>() / 8.0;
                    col_var += col.iter().map(|v| (v - mean_c).powi(2)).sum::<f32>();
                    row_var += row.iter().map(|v| (v - mean_r).powi(2)).sum::<f32>();
                }
                if bit == 0 {
                    // Vertical stripes: variation along x (rows vary).
                    assert!(row_var > col_var, "sample {i} channel {c}");
                } else {
                    assert!(col_var > row_var, "sample {i} channel {c}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "2^channels")]
    fn channel_bits_class_count_checked() {
        let _ = DatasetSpec::new(SyntheticKind::ChannelBits, 8, 8, 1, 4);
    }
}
