use mixq_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labelled mini-batch: images `(B, h, w, c)` plus class indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Input images, NHWC.
    pub images: Tensor<f32>,
    /// Ground-truth class index per batch item.
    pub labels: Vec<usize>,
}

/// A train/test split of a [`Dataset`].
#[derive(Debug, Clone)]
pub struct Split {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

/// An in-memory labelled image dataset.
///
/// # Examples
///
/// ```
/// use mixq_data::Dataset;
/// use mixq_tensor::{Shape, Tensor};
///
/// let images = Tensor::<f32>::zeros(Shape::new(4, 2, 2, 1));
/// let ds = Dataset::new(images, vec![0, 1, 0, 1], 2)?;
/// assert_eq!(ds.len(), 4);
/// let split = ds.split(0.5, 7);
/// assert_eq!(split.train.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor<f32>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Wraps images `(N, h, w, c)` and `N` labels.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error if the label count does not match the
    /// batch dimension or a label exceeds `num_classes`.
    pub fn new(
        images: Tensor<f32>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, String> {
        if images.shape().n != labels.len() {
            return Err(format!(
                "label count {} does not match batch size {}",
                labels.len(),
                images.shape().n
            ));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(format!("label {bad} exceeds num_classes {num_classes}"));
        }
        Ok(Dataset {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Shape of a single sample, `(1, h, w, c)`.
    pub fn sample_shape(&self) -> Shape {
        self.images.shape().with_batch(1)
    }

    /// All images `(N, h, w, c)`.
    pub fn images(&self) -> &Tensor<f32> {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The `i`-th sample as a single-item batch.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> Batch {
        Batch {
            images: self.images.batch_item(i),
            labels: vec![self.labels[i]],
        }
    }

    /// Deterministically shuffled mini-batches for one training epoch.
    ///
    /// The final incomplete batch (if any) is dropped, as is conventional.
    pub fn epoch_batches(&self, batch_size: usize, seed: u64) -> Vec<Batch> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let item = self.images.shape().item_volume();
        let shape = self.images.shape();
        order
            .chunks_exact(batch_size)
            .map(|chunk| {
                let mut data = Vec::with_capacity(batch_size * item);
                let mut labels = Vec::with_capacity(batch_size);
                for &i in chunk {
                    data.extend_from_slice(&self.images.data()[i * item..(i + 1) * item]);
                    labels.push(self.labels[i]);
                }
                Batch {
                    images: Tensor::from_vec(shape.with_batch(batch_size), data)
                        .expect("chunk volume is consistent"),
                    labels,
                }
            })
            .collect()
    }

    /// Splits into train/test with the given train fraction, shuffling with
    /// `seed`.
    pub fn split(&self, train_fraction: f32, seed: u64) -> Split {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "fraction must be in [0, 1]"
        );
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let n_train = ((self.len() as f32) * train_fraction).round() as usize;
        let subset = |idx: &[usize]| -> Dataset {
            let item = self.images.shape().item_volume();
            let mut data = Vec::with_capacity(idx.len() * item);
            let mut labels = Vec::with_capacity(idx.len());
            for &i in idx {
                data.extend_from_slice(&self.images.data()[i * item..(i + 1) * item]);
                labels.push(self.labels[i]);
            }
            Dataset {
                images: Tensor::from_vec(self.images.shape().with_batch(idx.len()), data)
                    .expect("consistent volume"),
                labels,
                num_classes: self.num_classes,
            }
        };
        Split {
            train: subset(&order[..n_train]),
            test: subset(&order[n_train..]),
        }
    }

    /// First `n` samples as a calibration batch (for post-training range
    /// estimation), clamped to the dataset size.
    pub fn calibration_batch(&self, n: usize) -> Batch {
        let n = n.min(self.len());
        let item = self.images.shape().item_volume();
        Batch {
            images: Tensor::from_vec(
                self.images.shape().with_batch(n),
                self.images.data()[..n * item].to_vec(),
            )
            .expect("consistent volume"),
            labels: self.labels[..n].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let images =
            Tensor::from_vec(Shape::new(n, 1, 1, 1), (0..n).map(|i| i as f32).collect()).unwrap();
        Dataset::new(images, (0..n).map(|i| i % 2).collect(), 2).unwrap()
    }

    #[test]
    fn new_validates() {
        let images = Tensor::<f32>::zeros(Shape::new(3, 1, 1, 1));
        assert!(Dataset::new(images.clone(), vec![0, 1], 2).is_err());
        assert!(Dataset::new(images.clone(), vec![0, 1, 5], 2).is_err());
        assert!(Dataset::new(images, vec![0, 1, 1], 2).is_ok());
    }

    #[test]
    fn sample_and_shapes() {
        let ds = toy(4);
        assert_eq!(ds.sample_shape(), Shape::new(1, 1, 1, 1));
        let s = ds.sample(3);
        assert_eq!(s.images.data(), &[3.0]);
        assert_eq!(s.labels, vec![1]);
    }

    #[test]
    fn epoch_batches_cover_dataset_exactly_once() {
        let ds = toy(10);
        let batches = ds.epoch_batches(2, 1);
        assert_eq!(batches.len(), 5);
        let mut seen: Vec<f32> = batches
            .iter()
            .flat_map(|b| b.images.data().to_vec())
            .collect();
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, (0..10).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn epoch_batches_are_seed_deterministic() {
        let ds = toy(8);
        let a = ds.epoch_batches(4, 9);
        let b = ds.epoch_batches(4, 9);
        assert_eq!(a, b);
        let c = ds.epoch_batches(4, 10);
        assert_ne!(a, c, "different seeds should shuffle differently");
    }

    #[test]
    fn incomplete_batch_dropped() {
        let ds = toy(5);
        let batches = ds.epoch_batches(2, 0);
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn split_partitions() {
        let ds = toy(10);
        let split = ds.split(0.7, 3);
        assert_eq!(split.train.len(), 7);
        assert_eq!(split.test.len(), 3);
        assert_eq!(split.train.num_classes(), 2);
        // Union of values is the original set.
        let mut all: Vec<f32> = split
            .train
            .images()
            .data()
            .iter()
            .chain(split.test.images().data())
            .copied()
            .collect();
        all.sort_by(f32::total_cmp);
        assert_eq!(all, (0..10).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn calibration_batch_takes_prefix() {
        let ds = toy(6);
        let cal = ds.calibration_batch(4);
        assert_eq!(cal.images.shape().n, 4);
        assert_eq!(cal.labels.len(), 4);
        // Clamps to dataset size.
        let cal = ds.calibration_batch(100);
        assert_eq!(cal.images.shape().n, 6);
    }
}
