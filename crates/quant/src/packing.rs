//! Sub-byte bit packing (§4.1: "weight-parameters are stored in memory as
//! UINT-Q").
//!
//! On the MCU, 4-bit tensors store two codes per byte and 2-bit tensors four
//! codes per byte, LSB-first within each byte. The integer kernels consume
//! [`PackedTensor`]s directly, paying the unpack cost the cycle model
//! accounts for.

use std::fmt;

use crate::BitWidth;

/// A bit-packed buffer of unsigned `Q`-bit codes.
///
/// # Examples
///
/// ```
/// use mixq_quant::{BitWidth, PackedTensor};
///
/// let packed = PackedTensor::pack(&[1, 2, 3, 0, 1], BitWidth::W2);
/// assert_eq!(packed.byte_len(), 2); // 5 × 2 bits → 2 bytes
/// assert_eq!(packed.get(2), 3);
/// assert_eq!(packed.unpack(), vec![1, 2, 3, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedTensor {
    bytes: Vec<u8>,
    len: usize,
    bits: BitWidth,
}

impl PackedTensor {
    /// Packs unsigned codes into a bit-packed buffer.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds `2^Q − 1`.
    pub fn pack(codes: &[u8], bits: BitWidth) -> Self {
        let qmax = bits.qmax() as u8;
        let per_byte = 8 / bits.bits() as usize;
        let mut bytes = vec![0u8; codes.len().div_ceil(per_byte)];
        for (i, &code) in codes.iter().enumerate() {
            assert!(
                code <= qmax,
                "code {code} exceeds {qmax} for {bits} packing"
            );
            let byte = i / per_byte;
            let offset = (i % per_byte) * bits.bits() as usize;
            bytes[byte] |= code << offset;
        }
        PackedTensor {
            bytes,
            len: codes.len(),
            bits,
        }
    }

    /// Packs unsigned codes reusing a caller-provided byte buffer (cleared
    /// and resized in place), so steady-state inference can recycle packed
    /// storage instead of allocating per tensor.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds `2^Q − 1`.
    pub fn pack_into(codes: &[u8], bits: BitWidth, mut storage: Vec<u8>) -> Self {
        let qmax = bits.qmax() as u8;
        let per_byte = 8 / bits.bits() as usize;
        storage.clear();
        storage.resize(codes.len().div_ceil(per_byte), 0);
        for (i, &code) in codes.iter().enumerate() {
            assert!(
                code <= qmax,
                "code {code} exceeds {qmax} for {bits} packing"
            );
            let byte = i / per_byte;
            let offset = (i % per_byte) * bits.bits() as usize;
            storage[byte] |= code << offset;
        }
        PackedTensor {
            bytes: storage,
            len: codes.len(),
            bits,
        }
    }

    /// Consumes the tensor, returning the packed byte buffer (for recycling
    /// through a buffer pool).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Number of logical elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element precision.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Storage size in bytes — the quantity `mem(t, Q)` of Eq. 6–7.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Raw packed bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The `i`-th logical element.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of range (len {})", self.len);
        let q = self.bits.bits() as usize;
        let per_byte = 8 / q;
        let byte = self.bytes[i / per_byte];
        let offset = (i % per_byte) * q;
        (byte >> offset) & self.bits.qmax() as u8
    }

    /// Unpacks the whole buffer back to one code per byte.
    pub fn unpack(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        let q = self.bits.bits() as usize;
        let per_byte = 8 / q;
        let mask = self.bits.qmax() as u8;
        for i in 0..self.len {
            let byte = self.bytes[i / per_byte];
            let offset = (i % per_byte) * q;
            out.push((byte >> offset) & mask);
        }
        out
    }

    /// Unpacks into a caller-provided buffer, returning the element count.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `len()`.
    pub fn unpack_into(&self, out: &mut [u8]) -> usize {
        assert!(out.len() >= self.len, "output buffer too small");
        let q = self.bits.bits() as usize;
        let per_byte = 8 / q;
        let mask = self.bits.qmax() as u8;
        for (i, dst) in out.iter_mut().take(self.len).enumerate() {
            let byte = self.bytes[i / per_byte];
            let offset = (i % per_byte) * q;
            *dst = (byte >> offset) & mask;
        }
        self.len
    }
}

impl fmt::Display for PackedTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PackedTensor({} elems @ {}, {} bytes)",
            self.len,
            self.bits,
            self.bytes.len()
        )
    }
}

/// Bytes required to store `elements` codes at `bits` precision.
///
/// Convenience alias for [`BitWidth::bytes_for`], used throughout the memory
/// model.
pub fn packed_size(elements: usize, bits: BitWidth) -> usize {
    bits.bytes_for(elements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        for bits in BitWidth::ALL {
            let levels = bits.levels();
            let codes: Vec<u8> = (0..37u32).map(|i| (i % levels) as u8).collect();
            let packed = PackedTensor::pack(&codes, bits);
            assert_eq!(packed.unpack(), codes, "{bits}");
            assert_eq!(packed.len(), 37);
            assert_eq!(packed.byte_len(), bits.bytes_for(37));
        }
    }

    #[test]
    fn pack_into_matches_pack_and_recycles_storage() {
        let codes: Vec<u8> = (0..33u8).map(|i| i % 16).collect();
        let fresh = PackedTensor::pack(&codes, BitWidth::W4);
        // A dirty, over-sized recycled buffer must not leak into the result.
        let recycled = vec![0xFFu8; 64];
        let cap = recycled.capacity();
        let pooled = PackedTensor::pack_into(&codes, BitWidth::W4, recycled);
        assert_eq!(pooled, fresh);
        assert_eq!(pooled.unpack(), codes);
        // The buffer ownership round-trips without reallocating.
        let bytes = pooled.into_bytes();
        assert_eq!(bytes.capacity(), cap);
        assert_eq!(bytes.len(), BitWidth::W4.bytes_for(33));
    }

    #[test]
    fn get_matches_unpack() {
        let codes: Vec<u8> = vec![3, 0, 1, 2, 3, 3, 0, 1, 2];
        let packed = PackedTensor::pack(&codes, BitWidth::W2);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(packed.get(i), c);
        }
    }

    #[test]
    fn four_bit_layout_is_lsb_first() {
        let packed = PackedTensor::pack(&[0x1, 0x2], BitWidth::W4);
        // element 0 in low nibble, element 1 in high nibble
        assert_eq!(packed.as_bytes(), &[0x21]);
    }

    #[test]
    fn two_bit_layout_is_lsb_first() {
        let packed = PackedTensor::pack(&[1, 2, 3, 0], BitWidth::W2);
        // 0b00_11_10_01
        assert_eq!(packed.as_bytes(), &[0b0011_1001]);
    }

    #[test]
    fn eight_bit_is_identity() {
        let codes = vec![0u8, 127, 255];
        let packed = PackedTensor::pack(&codes, BitWidth::W8);
        assert_eq!(packed.as_bytes(), codes.as_slice());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overflowing_code_panics() {
        let _ = PackedTensor::pack(&[4], BitWidth::W2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let packed = PackedTensor::pack(&[1], BitWidth::W4);
        let _ = packed.get(1);
    }

    #[test]
    fn unpack_into_buffer() {
        let packed = PackedTensor::pack(&[5, 10, 15], BitWidth::W4);
        let mut buf = [0u8; 8];
        assert_eq!(packed.unpack_into(&mut buf), 3);
        assert_eq!(&buf[..3], &[5, 10, 15]);
    }

    #[test]
    fn empty_tensor() {
        let packed = PackedTensor::pack(&[], BitWidth::W4);
        assert!(packed.is_empty());
        assert_eq!(packed.byte_len(), 0);
        assert_eq!(packed.unpack(), Vec::<u8>::new());
    }

    #[test]
    fn packed_size_helper() {
        assert_eq!(packed_size(1000, BitWidth::W4), 500);
        assert_eq!(packed_size(1001, BitWidth::W2), 251);
    }

    #[test]
    fn display() {
        let packed = PackedTensor::pack(&[1, 2, 3], BitWidth::W4);
        assert!(packed.to_string().contains("3 elems"));
    }
}
