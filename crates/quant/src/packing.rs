//! Sub-byte bit packing (§4.1: "weight-parameters are stored in memory as
//! UINT-Q").
//!
//! On the MCU, 4-bit tensors store two codes per byte and 2-bit tensors four
//! codes per byte, LSB-first within each byte. The integer kernels consume
//! [`PackedTensor`]s directly, paying the unpack cost the cycle model
//! accounts for.
//!
//! The pack/unpack loops are byte-shuffle bound, so they get dedicated
//! 128-bit SIMD kernels (the private `simd` module below): nibble/crumb
//! interleave via
//! shifts+masks, the host-side analogue of the PULP-NN `bitextract`
//! unpacking (arXiv:2007.07759). They are bit-exact by construction (pure
//! bit rearrangement, no arithmetic), validated against the scalar loops in
//! the tests, and disabled by [`set_force_scalar`] / `MIXQ_FORCE_SCALAR` so
//! the forced-scalar CI leg covers the portable path end to end.

use std::fmt;

use crate::BitWidth;

/// Disables the SIMD pack/unpack kernels for the whole process (the scalar
/// loops are always the reference semantics). `mixq-kernels` forwards its
/// `simd::set_forced(Some(Scalar))` pin here so "forced scalar" covers the
/// packing stage too; the `MIXQ_FORCE_SCALAR` environment variable is
/// honored independently at first use.
pub fn set_force_scalar(force: bool) {
    simd::set_force_scalar(force);
}

/// A bit-packed buffer of unsigned `Q`-bit codes.
///
/// # Examples
///
/// ```
/// use mixq_quant::{BitWidth, PackedTensor};
///
/// let packed = PackedTensor::pack(&[1, 2, 3, 0, 1], BitWidth::W2);
/// assert_eq!(packed.byte_len(), 2); // 5 × 2 bits → 2 bytes
/// assert_eq!(packed.get(2), 3);
/// assert_eq!(packed.unpack(), vec![1, 2, 3, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedTensor {
    bytes: Vec<u8>,
    len: usize,
    bits: BitWidth,
}

impl PackedTensor {
    /// Packs unsigned codes into a bit-packed buffer.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds `2^Q − 1`.
    pub fn pack(codes: &[u8], bits: BitWidth) -> Self {
        let mut bytes = vec![0u8; bits.bytes_for(codes.len())];
        pack_codes(codes, bits, &mut bytes);
        PackedTensor {
            bytes,
            len: codes.len(),
            bits,
        }
    }

    /// Packs unsigned codes reusing a caller-provided byte buffer (cleared
    /// and resized in place), so steady-state inference can recycle packed
    /// storage instead of allocating per tensor.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds `2^Q − 1`.
    pub fn pack_into(codes: &[u8], bits: BitWidth, mut storage: Vec<u8>) -> Self {
        storage.clear();
        storage.resize(bits.bytes_for(codes.len()), 0);
        pack_codes(codes, bits, &mut storage);
        PackedTensor {
            bytes: storage,
            len: codes.len(),
            bits,
        }
    }

    /// Consumes the tensor, returning the packed byte buffer (for recycling
    /// through a buffer pool).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Number of logical elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element precision.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Storage size in bytes — the quantity `mem(t, Q)` of Eq. 6–7.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Raw packed bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The `i`-th logical element.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of range (len {})", self.len);
        let q = self.bits.bits() as usize;
        let per_byte = 8 / q;
        let byte = self.bytes[i / per_byte];
        let offset = (i % per_byte) * q;
        (byte >> offset) & self.bits.qmax() as u8
    }

    /// Unpacks the whole buffer back to one code per byte.
    pub fn unpack(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len];
        unpack_codes(&self.bytes, self.bits, &mut out);
        out
    }

    /// Unpacks into a caller-provided buffer, returning the element count.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `len()`.
    pub fn unpack_into(&self, out: &mut [u8]) -> usize {
        assert!(out.len() >= self.len, "output buffer too small");
        unpack_codes(&self.bytes, self.bits, &mut out[..self.len]);
        self.len
    }
}

/// Packs `codes` into the pre-zeroed `bytes` buffer (sized
/// `bits.bytes_for(codes.len())`), dispatching to the SIMD kernels for the
/// sub-byte widths when available. Panic semantics match the scalar loop:
/// the *first* out-of-range code trips the assert.
fn pack_codes(codes: &[u8], bits: BitWidth, bytes: &mut [u8]) {
    debug_assert_eq!(bytes.len(), bits.bytes_for(codes.len()));
    if bits == BitWidth::W8 {
        // One code per byte and qmax = 255: a straight copy, nothing to
        // validate.
        bytes.copy_from_slice(codes);
        return;
    }
    let done = if simd::enabled() {
        simd::pack(codes, bits, bytes)
    } else {
        0
    };
    pack_scalar_tail(&codes[done..], bits, bytes, done);
}

/// The portable LSB-first packing loop, starting at logical element
/// `start` (whose target bytes must be zero).
fn pack_scalar_tail(codes: &[u8], bits: BitWidth, bytes: &mut [u8], start: usize) {
    let qmax = bits.qmax() as u8;
    let q = bits.bits() as usize;
    let per_byte = 8 / q;
    for (j, &code) in codes.iter().enumerate() {
        assert!(
            code <= qmax,
            "code {code} exceeds {qmax} for {bits} packing"
        );
        let i = start + j;
        bytes[i / per_byte] |= code << ((i % per_byte) * q);
    }
}

/// Unpacks exactly `out.len()` codes from `bytes`.
fn unpack_codes(bytes: &[u8], bits: BitWidth, out: &mut [u8]) {
    if bits == BitWidth::W8 {
        out.copy_from_slice(&bytes[..out.len()]);
        return;
    }
    let done = if simd::enabled() {
        simd::unpack(bytes, bits, out)
    } else {
        0
    };
    let q = bits.bits() as usize;
    let per_byte = 8 / q;
    let mask = bits.qmax() as u8;
    for (i, dst) in out.iter_mut().enumerate().skip(done) {
        let byte = bytes[i / per_byte];
        let offset = (i % per_byte) * q;
        *dst = (byte >> offset) & mask;
    }
}

/// 128-bit nibble/crumb interleave kernels.
///
/// One SSE2-instruction kernel serves every x86_64 (AVX2 adds nothing for
/// 16-byte shuffle work — the cross-lane `vpunpck` semantics of 256-bit
/// registers would cost extra permutes for no bandwidth win), and NEON
/// mirrors it on aarch64. All kernels process whole 16-byte output (pack)
/// or input (unpack) blocks and leave the remainder to the scalar loops.
#[allow(unsafe_code)]
mod simd {
    use crate::BitWidth;
    use std::sync::atomic::{AtomicBool, Ordering};

    static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

    pub(super) fn set_force_scalar(force: bool) {
        FORCE_SCALAR.store(force, Ordering::Release);
    }

    /// Whether the SIMD kernels should run: not pinned off, not disabled by
    /// `MIXQ_FORCE_SCALAR`, and the CPU has the baseline vector ISA.
    pub(super) fn enabled() -> bool {
        !FORCE_SCALAR.load(Ordering::Acquire) && detected()
    }

    fn detected() -> bool {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            let forced_scalar =
                std::env::var_os("MIXQ_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
            if forced_scalar {
                return false;
            }
            #[cfg(target_arch = "x86_64")]
            {
                is_x86_feature_detected!("sse2")
            }
            #[cfg(target_arch = "aarch64")]
            {
                true
            }
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                false
            }
        })
    }

    /// Packs as many whole blocks as possible; returns codes consumed.
    pub(super) fn pack(codes: &[u8], bits: BitWidth, bytes: &mut [u8]) -> usize {
        #[cfg(target_arch = "x86_64")]
        return match bits {
            // SAFETY: SSE2 positively detected in `enabled()`.
            BitWidth::W4 => unsafe { x86::pack_w4(codes, bytes) },
            // SAFETY: SSE2 positively detected in `enabled()`.
            BitWidth::W2 => unsafe { x86::pack_w2(codes, bytes) },
            BitWidth::W8 => 0,
        };
        #[cfg(target_arch = "aarch64")]
        return match bits {
            // SAFETY: NEON is baseline on aarch64.
            BitWidth::W4 => unsafe { neon::pack_w4(codes, bytes) },
            // SAFETY: NEON is baseline on aarch64.
            BitWidth::W2 => unsafe { neon::pack_w2(codes, bytes) },
            BitWidth::W8 => 0,
        };
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            let _ = (codes, bits, bytes);
            0
        }
    }

    /// Unpacks as many whole blocks as possible; returns codes produced.
    pub(super) fn unpack(bytes: &[u8], bits: BitWidth, out: &mut [u8]) -> usize {
        #[cfg(target_arch = "x86_64")]
        return match bits {
            // SAFETY: SSE2 positively detected in `enabled()`.
            BitWidth::W4 => unsafe { x86::unpack_w4(bytes, out) },
            // SAFETY: SSE2 positively detected in `enabled()`.
            BitWidth::W2 => unsafe { x86::unpack_w2(bytes, out) },
            BitWidth::W8 => 0,
        };
        #[cfg(target_arch = "aarch64")]
        return match bits {
            // SAFETY: NEON is baseline on aarch64.
            BitWidth::W4 => unsafe { neon::unpack_w4(bytes, out) },
            // SAFETY: NEON is baseline on aarch64.
            BitWidth::W2 => unsafe { neon::unpack_w2(bytes, out) },
            BitWidth::W8 => 0,
        };
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            let _ = (bytes, bits, out);
            0
        }
    }

    /// A vector block flagged an out-of-range code: rescan it in order so
    /// the *first* offender trips the same assert the scalar loop uses.
    pub(super) fn reject_chunk(codes: &[u8], bits: BitWidth) -> ! {
        let qmax = bits.qmax() as u8;
        for &code in codes {
            assert!(
                code <= qmax,
                "code {code} exceeds {qmax} for {bits} packing"
            );
        }
        unreachable!("vector validation flagged a chunk with no bad code")
    }

    #[cfg(target_arch = "x86_64")]
    mod x86 {
        use super::super::BitWidth;
        use std::arch::x86_64::*;

        /// 32 W4 codes → 16 bytes per block: `(v | v≫4) & 0x00FF` folds each
        /// code pair into its target byte, `packuswb` compacts.
        #[target_feature(enable = "sse2")]
        pub unsafe fn pack_w4(codes: &[u8], bytes: &mut [u8]) -> usize {
            let blocks = codes.len() / 32;
            let himask = _mm_set1_epi8(0xF0u8 as i8);
            let lomask = _mm_set1_epi16(0x00FF);
            let zero = _mm_setzero_si128();
            for b in 0..blocks {
                let p = codes.as_ptr().add(b * 32);
                let v0 = _mm_loadu_si128(p as *const __m128i);
                let v1 = _mm_loadu_si128(p.add(16) as *const __m128i);
                let bad = _mm_or_si128(_mm_and_si128(v0, himask), _mm_and_si128(v1, himask));
                if _mm_movemask_epi8(_mm_cmpeq_epi8(bad, zero)) != 0xFFFF {
                    super::reject_chunk(&codes[b * 32..b * 32 + 32], BitWidth::W4);
                }
                let t0 = _mm_and_si128(_mm_or_si128(v0, _mm_srli_epi16(v0, 4)), lomask);
                let t1 = _mm_and_si128(_mm_or_si128(v1, _mm_srli_epi16(v1, 4)), lomask);
                _mm_storeu_si128(
                    bytes.as_mut_ptr().add(b * 16) as *mut __m128i,
                    _mm_packus_epi16(t0, t1),
                );
            }
            blocks * 32
        }

        /// 64 W2 codes → 16 bytes per block: two fold stages (pairs into
        /// nibbles at u16, nibbles into bytes at u32), then two packs.
        #[target_feature(enable = "sse2")]
        pub unsafe fn pack_w2(codes: &[u8], bytes: &mut [u8]) -> usize {
            let blocks = codes.len() / 64;
            let himask = _mm_set1_epi8(0xFCu8 as i8);
            let m16 = _mm_set1_epi16(0x000F);
            let m32 = _mm_set1_epi32(0x0000_00FF);
            let zero = _mm_setzero_si128();
            for b in 0..blocks {
                let p = codes.as_ptr().add(b * 64);
                let mut v = [zero; 4];
                let mut bad = zero;
                for (j, vj) in v.iter_mut().enumerate() {
                    *vj = _mm_loadu_si128(p.add(j * 16) as *const __m128i);
                    bad = _mm_or_si128(bad, _mm_and_si128(*vj, himask));
                }
                if _mm_movemask_epi8(_mm_cmpeq_epi8(bad, zero)) != 0xFFFF {
                    super::reject_chunk(&codes[b * 64..b * 64 + 64], BitWidth::W2);
                }
                let mut r = [zero; 4];
                for (rj, vj) in r.iter_mut().zip(&v) {
                    let t = _mm_and_si128(_mm_or_si128(*vj, _mm_srli_epi16(*vj, 6)), m16);
                    *rj = _mm_and_si128(_mm_or_si128(t, _mm_srli_epi32(t, 12)), m32);
                }
                // Values are ≤ 255, so both saturating packs are lossless.
                let lo = _mm_packs_epi32(r[0], r[1]);
                let hi = _mm_packs_epi32(r[2], r[3]);
                _mm_storeu_si128(
                    bytes.as_mut_ptr().add(b * 16) as *mut __m128i,
                    _mm_packus_epi16(lo, hi),
                );
            }
            blocks * 64
        }

        /// 16 bytes → 32 W4 codes per block: split nibbles, interleave.
        #[target_feature(enable = "sse2")]
        pub unsafe fn unpack_w4(bytes: &[u8], out: &mut [u8]) -> usize {
            let blocks = out.len() / 32;
            let mask = _mm_set1_epi8(0x0F);
            for b in 0..blocks {
                let v = _mm_loadu_si128(bytes.as_ptr().add(b * 16) as *const __m128i);
                let lo = _mm_and_si128(v, mask);
                let hi = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
                let o = out.as_mut_ptr().add(b * 32);
                _mm_storeu_si128(o as *mut __m128i, _mm_unpacklo_epi8(lo, hi));
                _mm_storeu_si128(o.add(16) as *mut __m128i, _mm_unpackhi_epi8(lo, hi));
            }
            blocks * 32
        }

        /// 16 bytes → 64 W2 codes per block: four crumb planes, two
        /// interleave rounds restore source order.
        #[target_feature(enable = "sse2")]
        pub unsafe fn unpack_w2(bytes: &[u8], out: &mut [u8]) -> usize {
            let blocks = out.len() / 64;
            let mask = _mm_set1_epi8(0x03);
            for b in 0..blocks {
                let v = _mm_loadu_si128(bytes.as_ptr().add(b * 16) as *const __m128i);
                let b0 = _mm_and_si128(v, mask);
                let b1 = _mm_and_si128(_mm_srli_epi16(v, 2), mask);
                let b2 = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
                let b3 = _mm_and_si128(_mm_srli_epi16(v, 6), mask);
                let l01 = _mm_unpacklo_epi8(b0, b1);
                let h01 = _mm_unpackhi_epi8(b0, b1);
                let l23 = _mm_unpacklo_epi8(b2, b3);
                let h23 = _mm_unpackhi_epi8(b2, b3);
                let o = out.as_mut_ptr().add(b * 64);
                _mm_storeu_si128(o as *mut __m128i, _mm_unpacklo_epi16(l01, l23));
                _mm_storeu_si128(o.add(16) as *mut __m128i, _mm_unpackhi_epi16(l01, l23));
                _mm_storeu_si128(o.add(32) as *mut __m128i, _mm_unpacklo_epi16(h01, h23));
                _mm_storeu_si128(o.add(48) as *mut __m128i, _mm_unpackhi_epi16(h01, h23));
            }
            blocks * 64
        }
    }

    #[cfg(target_arch = "aarch64")]
    mod neon {
        use super::super::BitWidth;
        use std::arch::aarch64::*;

        #[target_feature(enable = "neon")]
        pub unsafe fn pack_w4(codes: &[u8], bytes: &mut [u8]) -> usize {
            let blocks = codes.len() / 32;
            let m = vdupq_n_u16(0x00FF);
            for b in 0..blocks {
                let p = codes.as_ptr().add(b * 32);
                let v0 = vld1q_u8(p);
                let v1 = vld1q_u8(p.add(16));
                if vmaxvq_u8(vmaxq_u8(v0, v1)) > 15 {
                    super::reject_chunk(&codes[b * 32..b * 32 + 32], BitWidth::W4);
                }
                let w0 = vreinterpretq_u16_u8(v0);
                let w1 = vreinterpretq_u16_u8(v1);
                let t0 = vandq_u16(vorrq_u16(w0, vshrq_n_u16(w0, 4)), m);
                let t1 = vandq_u16(vorrq_u16(w1, vshrq_n_u16(w1, 4)), m);
                vst1q_u8(
                    bytes.as_mut_ptr().add(b * 16),
                    vcombine_u8(vmovn_u16(t0), vmovn_u16(t1)),
                );
            }
            blocks * 32
        }

        #[target_feature(enable = "neon")]
        pub unsafe fn pack_w2(codes: &[u8], bytes: &mut [u8]) -> usize {
            let blocks = codes.len() / 64;
            let m16 = vdupq_n_u16(0x000F);
            let m32 = vdupq_n_u32(0x0000_00FF);
            for b in 0..blocks {
                let p = codes.as_ptr().add(b * 64);
                let v: [uint8x16_t; 4] = [
                    vld1q_u8(p),
                    vld1q_u8(p.add(16)),
                    vld1q_u8(p.add(32)),
                    vld1q_u8(p.add(48)),
                ];
                let peak = vmaxvq_u8(vmaxq_u8(vmaxq_u8(v[0], v[1]), vmaxq_u8(v[2], v[3])));
                if peak > 3 {
                    super::reject_chunk(&codes[b * 64..b * 64 + 64], BitWidth::W2);
                }
                let mut n = [vdup_n_u16(0); 4];
                for (nj, vj) in n.iter_mut().zip(&v) {
                    let w = vreinterpretq_u16_u8(*vj);
                    let t = vandq_u16(vorrq_u16(w, vshrq_n_u16(w, 6)), m16);
                    let t32 = vreinterpretq_u32_u16(t);
                    let r = vandq_u32(vorrq_u32(t32, vshrq_n_u32(t32, 12)), m32);
                    *nj = vmovn_u32(r);
                }
                let b01 = vmovn_u16(vcombine_u16(n[0], n[1]));
                let b23 = vmovn_u16(vcombine_u16(n[2], n[3]));
                vst1q_u8(bytes.as_mut_ptr().add(b * 16), vcombine_u8(b01, b23));
            }
            blocks * 64
        }

        #[target_feature(enable = "neon")]
        pub unsafe fn unpack_w4(bytes: &[u8], out: &mut [u8]) -> usize {
            let blocks = out.len() / 32;
            let mask = vdupq_n_u8(0x0F);
            for b in 0..blocks {
                let v = vld1q_u8(bytes.as_ptr().add(b * 16));
                let lo = vandq_u8(v, mask);
                let hi = vshrq_n_u8(v, 4);
                let o = out.as_mut_ptr().add(b * 32);
                vst1q_u8(o, vzip1q_u8(lo, hi));
                vst1q_u8(o.add(16), vzip2q_u8(lo, hi));
            }
            blocks * 32
        }

        #[target_feature(enable = "neon")]
        pub unsafe fn unpack_w2(bytes: &[u8], out: &mut [u8]) -> usize {
            let blocks = out.len() / 64;
            let mask = vdupq_n_u8(0x03);
            for b in 0..blocks {
                let v = vld1q_u8(bytes.as_ptr().add(b * 16));
                let b0 = vandq_u8(v, mask);
                let b1 = vandq_u8(vshrq_n_u8(v, 2), mask);
                let b2 = vandq_u8(vshrq_n_u8(v, 4), mask);
                let b3 = vshrq_n_u8(v, 6);
                let l01 = vreinterpretq_u16_u8(vzip1q_u8(b0, b1));
                let h01 = vreinterpretq_u16_u8(vzip2q_u8(b0, b1));
                let l23 = vreinterpretq_u16_u8(vzip1q_u8(b2, b3));
                let h23 = vreinterpretq_u16_u8(vzip2q_u8(b2, b3));
                let o = out.as_mut_ptr().add(b * 64);
                vst1q_u8(o, vreinterpretq_u8_u16(vzip1q_u16(l01, l23)));
                vst1q_u8(o.add(16), vreinterpretq_u8_u16(vzip2q_u16(l01, l23)));
                vst1q_u8(o.add(32), vreinterpretq_u8_u16(vzip1q_u16(h01, h23)));
                vst1q_u8(o.add(48), vreinterpretq_u8_u16(vzip2q_u16(h01, h23)));
            }
            blocks * 64
        }
    }
}

impl fmt::Display for PackedTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PackedTensor({} elems @ {}, {} bytes)",
            self.len,
            self.bits,
            self.bytes.len()
        )
    }
}

/// Bytes required to store `elements` codes at `bits` precision.
///
/// Convenience alias for [`BitWidth::bytes_for`], used throughout the memory
/// model.
pub fn packed_size(elements: usize, bits: BitWidth) -> usize {
    bits.bytes_for(elements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        for bits in BitWidth::ALL {
            let levels = bits.levels();
            let codes: Vec<u8> = (0..37u32).map(|i| (i % levels) as u8).collect();
            let packed = PackedTensor::pack(&codes, bits);
            assert_eq!(packed.unpack(), codes, "{bits}");
            assert_eq!(packed.len(), 37);
            assert_eq!(packed.byte_len(), bits.bytes_for(37));
        }
    }

    /// Pure-scalar reference (the pre-SIMD loop verbatim) for cross-checks.
    fn scalar_pack_ref(codes: &[u8], bits: BitWidth) -> Vec<u8> {
        let per_byte = 8 / bits.bits() as usize;
        let mut bytes = vec![0u8; codes.len().div_ceil(per_byte)];
        for (i, &code) in codes.iter().enumerate() {
            bytes[i / per_byte] |= code << ((i % per_byte) * bits.bits() as usize);
        }
        bytes
    }

    #[test]
    fn simd_blocks_match_scalar_reference_across_lengths() {
        // Lengths straddling every block boundary of the 128-bit kernels
        // (32 codes/block at W4, 64 at W2), plus scalar-tail remainders.
        for bits in BitWidth::ALL {
            for n in [
                0usize, 1, 15, 16, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129, 1000,
            ] {
                let levels = bits.levels();
                let codes: Vec<u8> = (0..n)
                    .map(|i| ((i * 2654435761) % levels as usize) as u8)
                    .collect();
                let packed = PackedTensor::pack(&codes, bits);
                assert_eq!(
                    packed.as_bytes(),
                    scalar_pack_ref(&codes, bits).as_slice(),
                    "{bits} n={n} pack drifted from the scalar layout"
                );
                assert_eq!(packed.unpack(), codes, "{bits} n={n} round trip");
                let mut buf = vec![0u8; n + 3];
                assert_eq!(packed.unpack_into(&mut buf), n);
                assert_eq!(&buf[..n], codes.as_slice(), "{bits} n={n} unpack_into");
            }
        }
    }

    #[test]
    fn pack_into_matches_pack_and_recycles_storage() {
        let codes: Vec<u8> = (0..33u8).map(|i| i % 16).collect();
        let fresh = PackedTensor::pack(&codes, BitWidth::W4);
        // A dirty, over-sized recycled buffer must not leak into the result.
        let recycled = vec![0xFFu8; 64];
        let cap = recycled.capacity();
        let pooled = PackedTensor::pack_into(&codes, BitWidth::W4, recycled);
        assert_eq!(pooled, fresh);
        assert_eq!(pooled.unpack(), codes);
        // The buffer ownership round-trips without reallocating.
        let bytes = pooled.into_bytes();
        assert_eq!(bytes.capacity(), cap);
        assert_eq!(bytes.len(), BitWidth::W4.bytes_for(33));
    }

    #[test]
    fn get_matches_unpack() {
        let codes: Vec<u8> = vec![3, 0, 1, 2, 3, 3, 0, 1, 2];
        let packed = PackedTensor::pack(&codes, BitWidth::W2);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(packed.get(i), c);
        }
    }

    #[test]
    fn four_bit_layout_is_lsb_first() {
        let packed = PackedTensor::pack(&[0x1, 0x2], BitWidth::W4);
        // element 0 in low nibble, element 1 in high nibble
        assert_eq!(packed.as_bytes(), &[0x21]);
    }

    #[test]
    fn two_bit_layout_is_lsb_first() {
        let packed = PackedTensor::pack(&[1, 2, 3, 0], BitWidth::W2);
        // 0b00_11_10_01
        assert_eq!(packed.as_bytes(), &[0b0011_1001]);
    }

    #[test]
    fn eight_bit_is_identity() {
        let codes = vec![0u8, 127, 255];
        let packed = PackedTensor::pack(&codes, BitWidth::W8);
        assert_eq!(packed.as_bytes(), codes.as_slice());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overflowing_code_panics() {
        let _ = PackedTensor::pack(&[4], BitWidth::W2);
    }

    #[test]
    #[should_panic(expected = "code 16 exceeds 15")]
    fn overflowing_code_inside_simd_block_panics() {
        // Offender deep inside a full vector block: the rescan must raise
        // the same first-bad-code assert the scalar loop would.
        let mut codes = vec![1u8; 64];
        codes[40] = 16;
        let _ = PackedTensor::pack(&codes, BitWidth::W4);
    }

    #[test]
    #[should_panic(expected = "code 9 exceeds 3")]
    fn overflowing_w2_code_inside_simd_block_panics() {
        let mut codes = vec![2u8; 130];
        codes[70] = 9;
        let _ = PackedTensor::pack(&codes, BitWidth::W2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let packed = PackedTensor::pack(&[1], BitWidth::W4);
        let _ = packed.get(1);
    }

    #[test]
    fn unpack_into_buffer() {
        let packed = PackedTensor::pack(&[5, 10, 15], BitWidth::W4);
        let mut buf = [0u8; 8];
        assert_eq!(packed.unpack_into(&mut buf), 3);
        assert_eq!(&buf[..3], &[5, 10, 15]);
    }

    #[test]
    fn empty_tensor() {
        let packed = PackedTensor::pack(&[], BitWidth::W4);
        assert!(packed.is_empty());
        assert_eq!(packed.byte_len(), 0);
        assert_eq!(packed.unpack(), Vec::<u8>::new());
    }

    #[test]
    fn packed_size_helper() {
        assert_eq!(packed_size(1000, BitWidth::W4), 500);
        assert_eq!(packed_size(1001, BitWidth::W2), 251);
    }

    #[test]
    fn display() {
        let packed = PackedTensor::pack(&[1, 2, 3], BitWidth::W4);
        assert!(packed.to_string().contains("3 elems"));
    }
}
