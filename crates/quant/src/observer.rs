//! Range observers for activation and weight tensors (paper §3).
//!
//! * [`MinMaxObserver`] — running min/max, the Jacob-et-al. weight range
//!   estimator and the calibration-time activation estimator.
//! * [`EmaObserver`] — exponential moving average of per-batch min/max, the
//!   TensorFlow-style training-time statistic.
//! * [`PactClip`] — the PACT learned clipping bound `b` for activations
//!   (`a = 0` to reproduce the ReLU non-linearity), updated by
//!   backpropagation: `∂y/∂b = 1` wherever the input saturates.

use std::fmt;

use crate::{BitWidth, QuantParams};

/// Running min/max range estimator.
///
/// # Examples
///
/// ```
/// use mixq_quant::observer::MinMaxObserver;
/// use mixq_quant::BitWidth;
///
/// let mut obs = MinMaxObserver::new();
/// obs.observe(&[-1.0, 0.5, 3.0]);
/// obs.observe(&[-2.0, 1.0]);
/// let q = obs.quant_params(BitWidth::W8);
/// assert_eq!(q.quantize(-2.0), 0);
/// assert_eq!(q.quantize(3.0), 255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MinMaxObserver {
    min: f32,
    max: f32,
    seen: bool,
}

impl MinMaxObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        MinMaxObserver {
            min: 0.0,
            max: 0.0,
            seen: false,
        }
    }

    /// Folds a batch of values into the running range.
    pub fn observe(&mut self, values: &[f32]) {
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            if !self.seen {
                self.min = v;
                self.max = v;
                self.seen = true;
            } else {
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
        }
    }

    /// Observed range so far, `(0.0, 0.0)` before any observation.
    pub fn range(&self) -> (f32, f32) {
        (self.min, self.max)
    }

    /// Whether any value has been observed.
    pub fn has_observations(&self) -> bool {
        self.seen
    }

    /// Derives the asymmetric affine quantizer for the observed range.
    pub fn quant_params(&self, bits: BitWidth) -> QuantParams {
        QuantParams::from_min_max(self.min, self.max, bits)
    }

    /// Resets the observer to its empty state.
    pub fn reset(&mut self) {
        *self = MinMaxObserver::new();
    }
}

impl fmt::Display for MinMaxObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MinMax[{:.4}, {:.4}]", self.min, self.max)
    }
}

/// Exponential-moving-average min/max estimator (smooths batch noise during
/// quantization-aware training).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmaObserver {
    min: f32,
    max: f32,
    momentum: f32,
    seen: bool,
}

impl EmaObserver {
    /// Creates an observer with the given momentum (typical: 0.9–0.99).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= momentum < 1.0`.
    pub fn new(momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        EmaObserver {
            min: 0.0,
            max: 0.0,
            momentum,
            seen: false,
        }
    }

    /// Folds a batch: `stat ← momentum·stat + (1−momentum)·batch_stat`.
    pub fn observe(&mut self, values: &[f32]) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in values {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo > hi {
            return; // empty or all non-finite
        }
        if !self.seen {
            self.min = lo;
            self.max = hi;
            self.seen = true;
        } else {
            self.min = self.momentum * self.min + (1.0 - self.momentum) * lo;
            self.max = self.momentum * self.max + (1.0 - self.momentum) * hi;
        }
    }

    /// Smoothed range so far.
    pub fn range(&self) -> (f32, f32) {
        (self.min, self.max)
    }

    /// Derives the asymmetric affine quantizer for the smoothed range.
    pub fn quant_params(&self, bits: BitWidth) -> QuantParams {
        QuantParams::from_min_max(self.min, self.max, bits)
    }
}

/// Histogram-based range estimator with percentile calibration — the
/// TensorRT-style alternative the paper cites (§2, \[18\]): instead of the
/// raw min/max, clip the range at a percentile of the observed magnitude
/// distribution, trading saturation of outliers for resolution on the bulk.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramObserver {
    bins: Vec<u64>,
    max_abs: f32,
    count: u64,
}

impl HistogramObserver {
    /// Creates an observer with the given number of magnitude bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        HistogramObserver {
            bins: vec![0; bins],
            max_abs: 0.0,
            count: 0,
        }
    }

    /// Folds a batch of values into the magnitude histogram.
    ///
    /// The histogram range grows geometrically when a new maximum arrives
    /// (existing mass is re-binned conservatively into the top bin ratio).
    pub fn observe(&mut self, values: &[f32]) {
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            let a = v.abs();
            if a > self.max_abs {
                // Re-scale: old bins collapse proportionally.
                if self.count > 0 && self.max_abs > 0.0 {
                    let ratio = self.max_abs / a;
                    let mut rebinned = vec![0u64; self.bins.len()];
                    for (i, &c) in self.bins.iter().enumerate() {
                        let centre = (i as f32 + 0.5) / self.bins.len() as f32 * ratio;
                        let j =
                            ((centre * self.bins.len() as f32) as usize).min(self.bins.len() - 1);
                        rebinned[j] += c;
                    }
                    self.bins = rebinned;
                }
                self.max_abs = a;
            }
            let n = self.bins.len();
            let j = if self.max_abs > 0.0 {
                ((a / self.max_abs) * n as f32) as usize
            } else {
                0
            };
            self.bins[j.min(n - 1)] += 1;
            self.count += 1;
        }
    }

    /// Number of observed values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Magnitude below which `percentile` (0–1) of the mass lies.
    pub fn percentile_bound(&self, percentile: f32) -> f32 {
        assert!((0.0..=1.0).contains(&percentile), "percentile in [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = (self.count as f64 * percentile as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (i as f32 + 1.0) / self.bins.len() as f32 * self.max_abs;
            }
        }
        self.max_abs
    }

    /// Symmetric quantizer clipped at the given percentile of magnitude.
    pub fn quant_params(&self, percentile: f32, bits: BitWidth) -> QuantParams {
        QuantParams::symmetric(self.percentile_bound(percentile).max(f32::EPSILON), bits)
    }
}

/// The PACT learned activation clip `b` (Choi et al., used by the paper for
/// every activation tensor and for per-layer weight ranges).
///
/// Forward: `y = clamp(x, 0, b)` followed by uniform quantization with
/// `S = b/(2^Q − 1)`. Backward (straight-through): `∂y/∂b = 1` where
/// `x ≥ b`, else 0 — accumulated here and applied by the optimizer.
///
/// # Examples
///
/// ```
/// use mixq_quant::observer::PactClip;
///
/// let mut clip = PactClip::new(6.0);
/// // A gradient step that saw many saturated activations shrinks... or
/// // grows b depending on the loss gradient sign.
/// clip.accumulate_grad(0.5);
/// clip.apply_grad(0.1, 0.0); // lr = 0.1, no weight decay
/// assert!((clip.bound() - 5.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PactClip {
    bound: f32,
    grad: f32,
}

impl PactClip {
    /// Creates a clip with the given initial bound (the paper's PACT default
    /// initialization is a small constant such as 6.0–10.0).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is not positive.
    pub fn new(bound: f32) -> Self {
        assert!(bound > 0.0, "PACT bound must be positive");
        PactClip { bound, grad: 0.0 }
    }

    /// Current clipping bound `b`.
    pub fn bound(&self) -> f32 {
        self.bound
    }

    /// Pending accumulated gradient `∂L/∂b`.
    pub fn grad(&self) -> f32 {
        self.grad
    }

    /// Clamps `x` into `[0, b]` (forward pass).
    pub fn clamp(&self, x: f32) -> f32 {
        x.clamp(0.0, self.bound)
    }

    /// Straight-through derivative of the clip w.r.t. its *input*:
    /// 1 inside `(0, b)`, 0 outside.
    pub fn input_grad_mask(&self, x: f32) -> f32 {
        if x > 0.0 && x < self.bound {
            1.0
        } else {
            0.0
        }
    }

    /// Derivative of the clip w.r.t. *b*: 1 where the input saturated high.
    pub fn bound_grad(&self, x: f32) -> f32 {
        if x >= self.bound {
            1.0
        } else {
            0.0
        }
    }

    /// Adds to the pending gradient (called during backprop).
    pub fn accumulate_grad(&mut self, g: f32) {
        self.grad += g;
    }

    /// Applies the pending gradient with a plain SGD step plus L2 decay
    /// (PACT regularizes `b` towards small values), then clears it.
    ///
    /// The bound is kept strictly positive.
    pub fn apply_grad(&mut self, lr: f32, weight_decay: f32) {
        self.bound -= lr * (self.grad + weight_decay * self.bound);
        self.bound = self.bound.max(1e-3);
        self.grad = 0.0;
    }

    /// Derives the floor-rounding activation quantizer for the current bound.
    pub fn quant_params(&self, bits: BitWidth) -> QuantParams {
        QuantParams::from_pact_clip(self.bound, bits)
    }
}

impl Default for PactClip {
    fn default() -> Self {
        PactClip::new(6.0)
    }
}

impl fmt::Display for PactClip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PACT(b={:.4})", self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_tracks_extremes() {
        let mut obs = MinMaxObserver::new();
        assert!(!obs.has_observations());
        obs.observe(&[1.0, -1.0]);
        obs.observe(&[5.0]);
        obs.observe(&[f32::NAN]); // ignored
        assert_eq!(obs.range(), (-1.0, 5.0));
        obs.reset();
        assert!(!obs.has_observations());
        assert_eq!(obs.range(), (0.0, 0.0));
    }

    #[test]
    fn min_max_first_value_initializes_both_ends() {
        let mut obs = MinMaxObserver::new();
        obs.observe(&[3.0]);
        assert_eq!(obs.range(), (3.0, 3.0));
        let q = obs.quant_params(BitWidth::W8);
        // Range stretched to include zero.
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn ema_smooths_towards_batches() {
        let mut obs = EmaObserver::new(0.5);
        obs.observe(&[0.0, 10.0]);
        assert_eq!(obs.range(), (0.0, 10.0));
        obs.observe(&[0.0, 20.0]);
        let (_, hi) = obs.range();
        assert!((hi - 15.0).abs() < 1e-6);
        let q = obs.quant_params(BitWidth::W8);
        assert!(q.scale() > 0.0);
    }

    #[test]
    fn ema_ignores_empty_and_nonfinite_batches() {
        let mut obs = EmaObserver::new(0.9);
        obs.observe(&[]);
        obs.observe(&[f32::INFINITY]);
        assert_eq!(obs.range(), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn ema_rejects_bad_momentum() {
        let _ = EmaObserver::new(1.0);
    }

    #[test]
    fn pact_forward_and_masks() {
        let clip = PactClip::new(4.0);
        assert_eq!(clip.clamp(-1.0), 0.0);
        assert_eq!(clip.clamp(2.0), 2.0);
        assert_eq!(clip.clamp(9.0), 4.0);
        assert_eq!(clip.input_grad_mask(2.0), 1.0);
        assert_eq!(clip.input_grad_mask(-1.0), 0.0);
        assert_eq!(clip.input_grad_mask(5.0), 0.0);
        assert_eq!(clip.bound_grad(5.0), 1.0);
        assert_eq!(clip.bound_grad(2.0), 0.0);
    }

    #[test]
    fn pact_gradient_step_moves_bound() {
        let mut clip = PactClip::new(6.0);
        clip.accumulate_grad(1.0);
        clip.accumulate_grad(1.0);
        clip.apply_grad(0.5, 0.0);
        assert!((clip.bound() - 5.0).abs() < 1e-6);
        assert_eq!(clip.grad(), 0.0);
        // Bound never collapses to zero or below.
        let mut clip = PactClip::new(0.01);
        clip.accumulate_grad(100.0);
        clip.apply_grad(1.0, 0.0);
        assert!(clip.bound() > 0.0);
    }

    #[test]
    fn pact_quant_params_floor() {
        let clip = PactClip::new(3.0);
        let q = clip.quant_params(BitWidth::W2);
        // S = 3/3 = 1.0, floor rounding.
        assert_eq!(q.quantize(1.99), 1);
        assert_eq!(q.quantize(3.5), 3);
    }

    #[test]
    fn histogram_percentile_tracks_distribution() {
        let mut h = HistogramObserver::new(100);
        // 99 small values and one huge outlier.
        let mut vals: Vec<f32> = (0..99).map(|i| (i as f32 % 10.0) * 0.1).collect();
        vals.push(100.0);
        h.observe(&vals);
        assert_eq!(h.count(), 100);
        // The 95th percentile ignores the outlier...
        assert!(h.percentile_bound(0.95) < 5.0);
        // ...while the 100th percentile reaches it.
        assert!((h.percentile_bound(1.0) - 100.0).abs() < 1.0);
        // Percentile-clipped quantizer has much finer resolution.
        let q95 = h.quant_params(0.95, BitWidth::W8);
        let q100 = h.quant_params(1.0, BitWidth::W8);
        assert!(q95.scale() < q100.scale() / 10.0);
    }

    #[test]
    fn histogram_rescaling_preserves_count() {
        let mut h = HistogramObserver::new(16);
        h.observe(&[0.1, 0.2, 0.3]);
        h.observe(&[10.0]); // forces re-binning
        assert_eq!(h.count(), 4);
        assert!(h.percentile_bound(1.0) >= 10.0 - 1.0);
    }

    #[test]
    fn histogram_empty_and_nonfinite() {
        let mut h = HistogramObserver::new(8);
        h.observe(&[f32::NAN, f32::INFINITY]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_bound(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn histogram_percentile_range_checked() {
        let h = HistogramObserver::new(8);
        let _ = h.percentile_bound(1.5);
    }

    #[test]
    fn displays() {
        assert!(MinMaxObserver::new().to_string().contains("MinMax"));
        assert!(PactClip::default().to_string().contains("PACT"));
    }
}
