use std::fmt;

use mixq_tensor::Tensor;

use crate::BitWidth;

/// Weight-quantizer granularity (paper §3): one range per tensor (PL) or
/// one per output channel (PC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// Per-layer: a single `[a, b]` range for the whole tensor.
    #[default]
    PerLayer,
    /// Per-channel: independent ranges along the output-channel axis.
    PerChannel,
}

impl Granularity {
    /// Short label used in reports ("PL"/"PC").
    pub const fn label(self) -> &'static str {
        match self {
            Granularity::PerLayer => "PL",
            Granularity::PerChannel => "PC",
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Rounding applied when mapping reals to integer codes (Eq. 1).
///
/// The paper replaces `round()` with `floor()` for activations because the
/// truncation "gets simply" realized by a shift on the MCU (§3, last
/// paragraph); weights keep round-to-nearest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// Round to nearest (ties away from zero, like `f32::round`). Used for
    /// weight quantization.
    #[default]
    Nearest,
    /// Round towards negative infinity. Used for activation quantization on
    /// the integer-only path (a cheap shift on the MCU).
    Floor,
}

/// A uniform affine quantizer: `t = S · (T − Z)` with codes
/// `T ∈ [0, 2^Q − 1]` (UINT-Q, Eq. 2).
///
/// # Examples
///
/// ```
/// use mixq_quant::{BitWidth, QuantParams};
///
/// let q = QuantParams::from_min_max(-2.0, 6.0, BitWidth::W8);
/// assert_eq!(q.quantize(-2.0), 0);
/// assert_eq!(q.quantize(6.0), 255);
/// // Zero is exactly representable (required for zero padding).
/// assert_eq!(q.dequantize(q.zero_point() as u32), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
    zero_point: i32,
    bits: BitWidth,
    rounding: RoundingMode,
}

impl QuantParams {
    /// Builds an asymmetric quantizer covering `[min, max]` (Eq. 1), as used
    /// for weights with min/max statistics (per-channel path, §6).
    ///
    /// The range is first stretched to include zero so that zero-padding is
    /// exactly representable, then the scale `S = (b − a)/(2^Q − 1)` and the
    /// zero-point `Z = round(−a/S)` are derived. Degenerate ranges
    /// (`min == max`) produce a unit scale.
    pub fn from_min_max(min: f32, max: f32, bits: BitWidth) -> Self {
        let a = min.min(0.0);
        let b = max.max(0.0);
        let qmax = bits.qmax() as f32;
        let scale = if b - a > f32::EPSILON {
            (b - a) / qmax
        } else {
            1.0
        };
        let zero_point = (-a / scale).round() as i32;
        QuantParams {
            scale,
            zero_point: zero_point.clamp(0, bits.qmax() as i32),
            bits,
            rounding: RoundingMode::Nearest,
        }
    }

    /// Builds a symmetric quantizer covering `[−b, b]` (`Z` centred), as the
    /// PACT-style per-layer weight quantizer uses a learned symmetric clip.
    pub fn symmetric(bound: f32, bits: BitWidth) -> Self {
        let b = bound.abs().max(f32::EPSILON);
        QuantParams::from_min_max(-b, b, bits)
    }

    /// Builds the PACT activation quantizer: range `[0, clip]`, `Z = 0`,
    /// `S = clip/(2^Q − 1)` and **floor** rounding
    /// (`quant_act(x) = floor(clamp(x, 0, b)/S)`, §3).
    pub fn from_pact_clip(clip: f32, bits: BitWidth) -> Self {
        let b = clip.max(f32::EPSILON);
        QuantParams {
            scale: b / bits.qmax() as f32,
            zero_point: 0,
            bits,
            rounding: RoundingMode::Floor,
        }
    }

    /// Builds a quantizer from raw parts. Prefer the semantic constructors.
    pub fn from_parts(scale: f32, zero_point: i32, bits: BitWidth, rounding: RoundingMode) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        QuantParams {
            scale,
            zero_point,
            bits,
            rounding,
        }
    }

    /// The step size `S`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The zero-point `Z` (the code representing real 0).
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// The precision `Q`.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// The rounding mode used by [`QuantParams::quantize`].
    pub fn rounding(&self) -> RoundingMode {
        self.rounding
    }

    /// Real-valued lower bound of the representable range, `S·(0 − Z)`.
    pub fn range_min(&self) -> f32 {
        self.scale * (0.0 - self.zero_point as f32)
    }

    /// Real-valued upper bound of the representable range, `S·(qmax − Z)`.
    pub fn range_max(&self) -> f32 {
        self.scale * (self.bits.qmax() as i32 - self.zero_point) as f32
    }

    /// Maps a real value to its unsigned integer code (Eq. 1).
    pub fn quantize(&self, x: f32) -> u32 {
        let t = x / self.scale + self.zero_point as f32;
        let q = match self.rounding {
            RoundingMode::Nearest => t.round(),
            RoundingMode::Floor => t.floor(),
        };
        (q.max(0.0) as u32).min(self.bits.qmax())
    }

    /// Maps an integer code back to its real value (Eq. 2).
    pub fn dequantize(&self, code: u32) -> f32 {
        self.scale * (code as i32 - self.zero_point) as f32
    }

    /// Quantize-then-dequantize, the "fake quantization" of the training
    /// graph `g(x)`.
    pub fn fake_quantize(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// Applies [`QuantParams::fake_quantize`] to a whole tensor.
    pub fn fake_quantize_tensor(&self, t: &Tensor<f32>) -> Tensor<f32> {
        t.map(|v| self.fake_quantize(v))
    }

    /// Applies [`QuantParams::quantize`] to a whole tensor, producing codes.
    pub fn quantize_tensor(&self, t: &Tensor<f32>) -> Tensor<u8> {
        debug_assert!(self.bits.qmax() <= u8::MAX as u32);
        t.map(|v| self.quantize(v) as u8)
    }
}

impl fmt::Display for QuantParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Q{}(S={:.6}, Z={})",
            self.bits.bits(),
            self.scale,
            self.zero_point
        )
    }
}

/// Quantizer granularity for a weight tensor: one [`QuantParams`] for the
/// whole tensor (per-layer, PL) or one per output channel (per-channel, PC).
///
/// # Examples
///
/// ```
/// use mixq_quant::{BitWidth, ChannelParams};
/// use mixq_tensor::{Shape, Tensor};
///
/// // Two output channels with very different ranges — PC adapts per channel.
/// let w = Tensor::from_vec(Shape::new(2, 1, 1, 2), vec![0.1, -0.1, 10.0, -10.0])?;
/// let pc = ChannelParams::per_channel_min_max(&w, BitWidth::W4);
/// assert!(pc.channel(0).scale() < pc.channel(1).scale());
/// # Ok::<(), mixq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelParams {
    params: Vec<QuantParams>,
    per_channel: bool,
}

impl ChannelParams {
    /// Per-layer granularity: a single quantizer replicated across channels.
    pub fn per_layer(params: QuantParams, channels: usize) -> Self {
        ChannelParams {
            params: vec![params; channels.max(1)],
            per_channel: false,
        }
    }

    /// Per-channel granularity from an explicit list.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn per_channel(params: Vec<QuantParams>) -> Self {
        assert!(!params.is_empty(), "need at least one channel");
        ChannelParams {
            params,
            per_channel: true,
        }
    }

    /// Per-layer min/max quantizer for a weight tensor laid out
    /// `(c_o, k_h, k_w, c_i)`.
    pub fn per_layer_min_max(weights: &Tensor<f32>, bits: BitWidth) -> Self {
        let (lo, hi) = weights.min_max();
        ChannelParams::per_layer(QuantParams::from_min_max(lo, hi, bits), weights.shape().n)
    }

    /// Min/max quantizers at the requested [`Granularity`].
    pub fn from_granularity(
        weights: &Tensor<f32>,
        bits: BitWidth,
        granularity: Granularity,
    ) -> Self {
        match granularity {
            Granularity::PerLayer => ChannelParams::per_layer_min_max(weights, bits),
            Granularity::PerChannel => ChannelParams::per_channel_min_max(weights, bits),
        }
    }

    /// Per-channel min/max quantizers for a weight tensor laid out
    /// `(c_o, k_h, k_w, c_i)` — "independently approximating a given tensor
    /// along the outer dimension" (§3).
    pub fn per_channel_min_max(weights: &Tensor<f32>, bits: BitWidth) -> Self {
        let co = weights.shape().n;
        let vol = weights.shape().item_volume();
        let data = weights.data();
        let mut params = Vec::with_capacity(co);
        for c in 0..co {
            let slice = &data[c * vol..(c + 1) * vol];
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &v in slice {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            params.push(QuantParams::from_min_max(lo, hi, bits));
        }
        ChannelParams::per_channel(params)
    }

    /// Whether this is per-channel (PC) granularity.
    pub fn is_per_channel(&self) -> bool {
        self.per_channel
    }

    /// Number of channels covered.
    pub fn num_channels(&self) -> usize {
        self.params.len()
    }

    /// Quantizer for output channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn channel(&self, c: usize) -> &QuantParams {
        &self.params[c]
    }

    /// Iterates over the per-channel quantizers.
    pub fn iter(&self) -> impl Iterator<Item = &QuantParams> {
        self.params.iter()
    }

    /// The common precision of every channel quantizer.
    pub fn bits(&self) -> BitWidth {
        self.params[0].bits()
    }

    /// Fake-quantizes a weight tensor `(c_o, k_h, k_w, c_i)` channel-wise.
    pub fn fake_quantize_tensor(&self, w: &Tensor<f32>) -> Tensor<f32> {
        let co = w.shape().n;
        assert_eq!(co, self.params.len(), "channel count mismatch");
        let vol = w.shape().item_volume();
        let mut out = w.clone();
        for c in 0..co {
            let q = &self.params[c];
            for v in &mut out.data_mut()[c * vol..(c + 1) * vol] {
                *v = q.fake_quantize(*v);
            }
        }
        out
    }

    /// Quantizes a weight tensor `(c_o, k_h, k_w, c_i)` to integer codes.
    pub fn quantize_tensor(&self, w: &Tensor<f32>) -> Tensor<u8> {
        let co = w.shape().n;
        assert_eq!(co, self.params.len(), "channel count mismatch");
        let vol = w.shape().item_volume();
        let mut out = Tensor::<u8>::zeros(w.shape());
        for c in 0..co {
            let q = &self.params[c];
            for (dst, src) in out.data_mut()[c * vol..(c + 1) * vol]
                .iter_mut()
                .zip(&w.data()[c * vol..(c + 1) * vol])
            {
                *dst = q.quantize(*src) as u8;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_tensor::Shape;

    #[test]
    fn min_max_quantizer_endpoints() {
        let q = QuantParams::from_min_max(-1.0, 1.0, BitWidth::W8);
        assert_eq!(q.quantize(-1.0), 0);
        assert_eq!(q.quantize(1.0), 255);
        assert!(q.dequantize(q.zero_point() as u32).abs() < 1e-6);
    }

    #[test]
    fn range_always_includes_zero() {
        // All-positive weights still get a representable zero.
        let q = QuantParams::from_min_max(0.5, 1.5, BitWidth::W4);
        assert!(q.range_min() <= 0.0);
        assert_eq!(q.quantize(0.0), 0);
        // All-negative likewise.
        let q = QuantParams::from_min_max(-1.5, -0.5, BitWidth::W4);
        assert!(q.range_max() >= 0.0);
        assert_eq!(q.quantize(0.0), q.bits().qmax());
    }

    #[test]
    fn degenerate_range_does_not_blow_up() {
        let q = QuantParams::from_min_max(0.0, 0.0, BitWidth::W8);
        assert!(q.scale() > 0.0);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn pact_clip_uses_floor() {
        let q = QuantParams::from_pact_clip(6.0, BitWidth::W4);
        assert_eq!(q.zero_point(), 0);
        assert_eq!(q.rounding(), RoundingMode::Floor);
        // S = 6/15 = 0.4; x=0.79 -> floor(1.975)=1, nearest would give 2.
        assert_eq!(q.quantize(0.79), 1);
        // Negative inputs clamp to 0 (ReLU semantics).
        assert_eq!(q.quantize(-3.0), 0);
        // The clip value saturates at qmax.
        assert_eq!(q.quantize(7.0), 15);
    }

    #[test]
    fn symmetric_covers_both_signs() {
        let q = QuantParams::symmetric(2.0, BitWidth::W8);
        assert!((q.range_min() + 2.0).abs() < 0.05);
        assert!((q.range_max() - 2.0).abs() < 0.05);
    }

    #[test]
    fn fake_quantize_error_bounded_by_step() {
        let q = QuantParams::from_min_max(-3.0, 5.0, BitWidth::W8);
        for i in 0..100 {
            let x = -3.0 + 8.0 * (i as f32) / 99.0;
            let err = (q.fake_quantize(x) - x).abs();
            assert!(err <= 0.5 * q.scale() + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn quantize_saturates_out_of_range() {
        let q = QuantParams::from_min_max(-1.0, 1.0, BitWidth::W2);
        assert_eq!(q.quantize(-100.0), 0);
        assert_eq!(q.quantize(100.0), 3);
    }

    #[test]
    fn tensor_helpers_round_trip() {
        let t = Tensor::from_vec(Shape::vector(4), vec![-1.0f32, -0.3, 0.4, 1.0]).unwrap();
        let q = QuantParams::from_min_max(-1.0, 1.0, BitWidth::W8);
        let codes = q.quantize_tensor(&t);
        let fake = q.fake_quantize_tensor(&t);
        for i in 0..4 {
            assert!((q.dequantize(codes.data()[i] as u32) - fake.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn per_channel_adapts_scales() {
        let w = Tensor::from_vec(Shape::new(2, 1, 1, 2), vec![0.1, -0.1, 10.0, -10.0]).unwrap();
        let pc = ChannelParams::per_channel_min_max(&w, BitWidth::W4);
        assert!(pc.is_per_channel());
        assert_eq!(pc.num_channels(), 2);
        assert!(pc.channel(0).scale() < pc.channel(1).scale());

        let pl = ChannelParams::per_layer_min_max(&w, BitWidth::W4);
        assert!(!pl.is_per_channel());
        // PL uses the global range for both channels.
        assert_eq!(pl.channel(0), pl.channel(1));
    }

    #[test]
    fn per_channel_fake_quant_beats_per_layer_on_imbalanced_tensor() {
        // Channel 0 has tiny weights, channel 1 huge: the per-layer scale
        // obliterates channel 0 — the paper's motivation for PC quantization.
        let w = Tensor::from_vec(
            Shape::new(2, 1, 1, 4),
            vec![0.01, -0.02, 0.03, -0.01, 5.0, -4.0, 3.0, -5.0],
        )
        .unwrap();
        let pc = ChannelParams::per_channel_min_max(&w, BitWidth::W4);
        let pl = ChannelParams::per_layer_min_max(&w, BitWidth::W4);
        let err_pc = pc.fake_quantize_tensor(&w).squared_distance(&w).unwrap();
        let err_pl = pl.fake_quantize_tensor(&w).squared_distance(&w).unwrap();
        assert!(
            err_pc < err_pl,
            "per-channel error {err_pc} should beat per-layer {err_pl}"
        );
    }

    #[test]
    fn display_formats() {
        let q = QuantParams::from_min_max(-1.0, 1.0, BitWidth::W4);
        let s = q.to_string();
        assert!(s.starts_with("Q4("));
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn tensor_channel_mismatch_panics() {
        let w = Tensor::<f32>::zeros(Shape::new(3, 1, 1, 1));
        let pc = ChannelParams::per_layer(QuantParams::symmetric(1.0, BitWidth::W8), 2);
        let _ = pc.fake_quantize_tensor(&w);
    }
}
