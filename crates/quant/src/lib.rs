//! # mixq-quant
//!
//! Uniform low-bitwidth quantization primitives (paper §3):
//!
//! * [`BitWidth`] — the admissible precisions `Q ∈ {2, 4, 8}`.
//! * [`QuantParams`] / [`ChannelParams`] — uniform affine quantizers
//!   (Eq. 1–2) with per-layer (PL) and per-channel (PC) granularity.
//! * [`observer`] — range estimators: running min/max (as in Jacob et al.)
//!   and the PACT learned clipping bound.
//! * [`fixedpoint`] — the `m = m0 · 2^{n0}` decomposition used by the ICN
//!   layer (Eq. 5), with `0.5 ≤ |m0| < 1` and a Q31 integer mantissa.
//! * [`packing`] — sub-byte bit packing so 4-/2-bit tensors really occupy
//!   `Q/8` bytes per element, as on the microcontroller.
//!
//! All arithmetic on the deployment path is integer-only; floats appear only
//! where the paper's fake-quantized training graph uses them.
//!
//! # Examples
//!
//! ```
//! use mixq_quant::{BitWidth, QuantParams};
//!
//! // Quantize weights spanning [-1, 1] to 4 bits (UINT4 + zero-point).
//! let q = QuantParams::from_min_max(-1.0, 1.0, BitWidth::W4);
//! let code = q.quantize(0.0);
//! let back = q.dequantize(code);
//! assert!(back.abs() < q.scale()); // within one step of zero
//! ```

// `deny` rather than `forbid`: the SIMD sub-byte pack/unpack kernels in
// `packing::simd` need one scoped `allow(unsafe_code)` for their
// feature-detected intrinsics (same discipline as `mixq-kernels::simd` —
// every unsafe call sits behind a positive runtime CPU-feature check).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod bitwidth;
pub mod fixedpoint;
pub mod observer;
pub mod packing;

pub use affine::{ChannelParams, Granularity, QuantParams, RoundingMode};
pub use bitwidth::BitWidth;
pub use fixedpoint::FixedPointMultiplier;
pub use packing::PackedTensor;
