use std::fmt;

/// Admissible uniform-quantization precisions, `Q ∈ {2, 4, 8}` (paper §5:
/// "Only the values of Q = {2, 4, 8} are admittable solutions").
///
/// The ordering follows numeric bit count: `W2 < W4 < W8`.
///
/// # Examples
///
/// ```
/// use mixq_quant::BitWidth;
///
/// assert_eq!(BitWidth::W8.step_down(), Some(BitWidth::W4));
/// assert_eq!(BitWidth::W2.step_down(), None);
/// assert_eq!(BitWidth::W4.levels(), 16);
/// // 10 4-bit elements occupy 5 bytes.
/// assert_eq!(BitWidth::W4.bytes_for(10), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BitWidth {
    /// 2-bit precision (UINT2, 4 levels).
    W2,
    /// 4-bit precision (UINT4, 16 levels).
    W4,
    /// 8-bit precision (UINT8, 256 levels).
    W8,
}

impl BitWidth {
    /// All widths, most aggressive first.
    pub const ALL: [BitWidth; 3] = [BitWidth::W2, BitWidth::W4, BitWidth::W8];

    /// Number of bits.
    pub const fn bits(self) -> u32 {
        match self {
            BitWidth::W2 => 2,
            BitWidth::W4 => 4,
            BitWidth::W8 => 8,
        }
    }

    /// Number of representable levels, `2^Q`.
    pub const fn levels(self) -> u32 {
        1 << self.bits()
    }

    /// Largest representable unsigned code, `2^Q − 1`.
    pub const fn qmax(self) -> u32 {
        self.levels() - 1
    }

    /// One quantization step down (8→4, 4→2), or `None` at the minimum.
    ///
    /// This is the "single step" cut of Algorithms 1 and 2.
    pub const fn step_down(self) -> Option<BitWidth> {
        match self {
            BitWidth::W8 => Some(BitWidth::W4),
            BitWidth::W4 => Some(BitWidth::W2),
            BitWidth::W2 => None,
        }
    }

    /// One quantization step up (2→4, 4→8), or `None` at the maximum.
    pub const fn step_up(self) -> Option<BitWidth> {
        match self {
            BitWidth::W2 => Some(BitWidth::W4),
            BitWidth::W4 => Some(BitWidth::W8),
            BitWidth::W8 => None,
        }
    }

    /// Bytes needed to store `elements` values at this precision,
    /// rounded up to whole bytes (`mem(t, Q)` of Eq. 6–7).
    pub const fn bytes_for(self, elements: usize) -> usize {
        (elements * self.bits() as usize).div_ceil(8)
    }

    /// Parses a bit count.
    ///
    /// # Errors
    ///
    /// Returns the offending value if it is not 2, 4 or 8.
    pub fn try_from_bits(bits: u32) -> Result<Self, u32> {
        match bits {
            2 => Ok(BitWidth::W2),
            4 => Ok(BitWidth::W4),
            8 => Ok(BitWidth::W8),
            other => Err(other),
        }
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_levels_qmax() {
        assert_eq!(BitWidth::W2.bits(), 2);
        assert_eq!(BitWidth::W4.bits(), 4);
        assert_eq!(BitWidth::W8.bits(), 8);
        assert_eq!(BitWidth::W2.levels(), 4);
        assert_eq!(BitWidth::W4.levels(), 16);
        assert_eq!(BitWidth::W8.levels(), 256);
        assert_eq!(BitWidth::W8.qmax(), 255);
    }

    #[test]
    fn steps() {
        assert_eq!(BitWidth::W8.step_down(), Some(BitWidth::W4));
        assert_eq!(BitWidth::W4.step_down(), Some(BitWidth::W2));
        assert_eq!(BitWidth::W2.step_down(), None);
        assert_eq!(BitWidth::W2.step_up(), Some(BitWidth::W4));
        assert_eq!(BitWidth::W8.step_up(), None);
    }

    #[test]
    fn ordering_follows_bits() {
        assert!(BitWidth::W2 < BitWidth::W4);
        assert!(BitWidth::W4 < BitWidth::W8);
    }

    #[test]
    fn byte_footprints_round_up() {
        assert_eq!(BitWidth::W8.bytes_for(10), 10);
        assert_eq!(BitWidth::W4.bytes_for(10), 5);
        assert_eq!(BitWidth::W4.bytes_for(11), 6);
        assert_eq!(BitWidth::W2.bytes_for(10), 3);
        assert_eq!(BitWidth::W2.bytes_for(0), 0);
    }

    #[test]
    fn parse_from_bits() {
        assert_eq!(BitWidth::try_from_bits(4), Ok(BitWidth::W4));
        assert_eq!(BitWidth::try_from_bits(3), Err(3));
    }

    #[test]
    fn display() {
        assert_eq!(BitWidth::W4.to_string(), "4b");
    }
}
