//! Fixed-point decomposition of the ICN multiplier (paper §4, Eq. 5).
//!
//! Each per-channel real multiplier `m = S_i·S_w/S_o · γ/σ` is decomposed as
//! `m = m0 · 2^{n0}` with `0.5 ≤ |m0| < 1`. `m0` is stored as a signed Q31
//! mantissa (`i32`) and `n0` as an `i8` exponent, exactly the `M0`/`N0`
//! arrays of Table 1. Requantization then needs only one widening multiply
//! and one arithmetic shift — integer-only, and `floor()` semantics for free.

use std::fmt;

/// A real multiplier decomposed as `m0 · 2^{n0}` with a Q31 integer mantissa.
///
/// # Examples
///
/// ```
/// use mixq_quant::FixedPointMultiplier;
///
/// let m = FixedPointMultiplier::from_real(0.0009765625); // 2^-10
/// assert_eq!(m.apply(4096), 4);                          // 4096 · 2^-10
/// assert!((m.to_real() - 0.0009765625).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedPointMultiplier {
    m0: i32,
    n0: i8,
}

/// Number of fractional bits in the stored mantissa.
const MANTISSA_BITS: u32 = 31;
const ONE_Q31: i64 = 1 << MANTISSA_BITS;

impl FixedPointMultiplier {
    /// The zero multiplier.
    pub const ZERO: FixedPointMultiplier = FixedPointMultiplier { m0: 0, n0: 0 };

    /// Decomposes a real multiplier.
    ///
    /// Values whose magnitude is so small that the exponent underflows `i8`
    /// collapse to [`FixedPointMultiplier::ZERO`]; exponent overflow
    /// saturates at `i8::MAX` (neither occurs for realistic ICN multipliers,
    /// which live within a few orders of magnitude of 1).
    pub fn from_real(m: f64) -> Self {
        if m == 0.0 || !m.is_finite() {
            return FixedPointMultiplier::ZERO;
        }
        // frexp: |m| = f * 2^e with f in [0.5, 1).
        let mut e = m.abs().log2().floor() as i32 + 1;
        let mut f = m / f64::powi(2.0, e);
        // log2/floor boundary corrections.
        while f.abs() >= 1.0 {
            f /= 2.0;
            e += 1;
        }
        while f.abs() < 0.5 {
            f *= 2.0;
            e -= 1;
        }
        let mut m0 = (f * ONE_Q31 as f64).round() as i64;
        // Rounding can push the mantissa to exactly 1.0.
        if m0.abs() >= ONE_Q31 {
            m0 /= 2;
            e += 1;
        }
        if e > i8::MAX as i32 {
            // Saturate; apply() will clamp the shift anyway.
            e = i8::MAX as i32;
        } else if e < i8::MIN as i32 {
            return FixedPointMultiplier::ZERO;
        }
        FixedPointMultiplier {
            m0: m0 as i32,
            n0: e as i8,
        }
    }

    /// The Q31 mantissa `M0` (`0.5 ≤ |M0|/2^31 < 1`, or 0).
    pub fn mantissa(&self) -> i32 {
        self.m0
    }

    /// The exponent `N0`.
    pub fn exponent(&self) -> i8 {
        self.n0
    }

    /// The effective right-shift `31 − N0` that [`apply`](Self::apply)
    /// performs on the widened `M0·v` product. Negative means `apply`
    /// left-shifts (saturating) — the regime the SIMD requant epilogue
    /// cannot express and must gate to scalar; a static checker can read
    /// the gate condition `shift() < 0` directly from here.
    pub fn shift(&self) -> i32 {
        MANTISSA_BITS as i32 - self.n0 as i32
    }

    /// Reconstructs the real multiplier `m0 · 2^{n0}`.
    pub fn to_real(&self) -> f64 {
        (self.m0 as f64 / ONE_Q31 as f64) * f64::powi(2.0, self.n0 as i32)
    }

    /// Computes `floor(m0 · 2^{n0} · v)` with integer-only arithmetic
    /// (Eq. 5's requantization step).
    ///
    /// Arithmetic right shift on the widened product implements the floor
    /// exactly, matching the MCU implementation.
    pub fn apply(&self, v: i32) -> i32 {
        let prod = self.m0 as i64 * v as i64;
        let shift = MANTISSA_BITS as i32 - self.n0 as i32;
        let shifted = if shift >= 63 {
            prod >> 63
        } else if shift >= 0 {
            prod >> shift
        } else {
            // Large positive exponents: exact left shift (saturating).
            prod.checked_shl((-shift) as u32)
                .unwrap_or(if prod < 0 { i64::MIN } else { i64::MAX })
        };
        shifted.clamp(i32::MIN as i64, i32::MAX as i64) as i32
    }
}

impl Default for FixedPointMultiplier {
    fn default() -> Self {
        FixedPointMultiplier::ZERO
    }
}

impl fmt::Display for FixedPointMultiplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}·2^{}", self.m0 as f64 / ONE_Q31 as f64, self.n0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mantissa_is_normalized() {
        for &m in &[0.3, 0.5, 0.75, 1.0, 1.5, 2.0, 123.456, 1e-6, 0.9999999] {
            for sign in [1.0, -1.0] {
                let fp = FixedPointMultiplier::from_real(m * sign);
                let frac = fp.mantissa().abs() as f64 / ONE_Q31 as f64;
                assert!((0.5..1.0).contains(&frac), "m={m} sign={sign} frac={frac}");
            }
        }
    }

    #[test]
    fn round_trip_is_accurate() {
        for &m in &[0.0009765625, 0.013, 0.5, 0.9, 1.0, 7.3, 1e-4, 42.0] {
            let fp = FixedPointMultiplier::from_real(m);
            let rel = (fp.to_real() - m).abs() / m;
            assert!(rel < 1e-9, "m={m} rel={rel}");
        }
    }

    #[test]
    fn zero_and_nonfinite_collapse() {
        assert_eq!(
            FixedPointMultiplier::from_real(0.0),
            FixedPointMultiplier::ZERO
        );
        assert_eq!(
            FixedPointMultiplier::from_real(f64::NAN),
            FixedPointMultiplier::ZERO
        );
        assert_eq!(FixedPointMultiplier::ZERO.apply(12345), 0);
        assert_eq!(FixedPointMultiplier::default(), FixedPointMultiplier::ZERO);
    }

    #[test]
    fn apply_matches_float_floor() {
        // apply() must equal floor(m * v) for a dense sweep.
        for &m in &[0.013, 0.25, 0.37, 0.9999, 1.0, 2.5, 0.0001] {
            let fp = FixedPointMultiplier::from_real(m);
            for v in (-2000..2000).step_by(7) {
                let exact = (m * v as f64).floor() as i64;
                let got = fp.apply(v) as i64;
                // Q31 rounding of the mantissa may land exactly on an
                // integer boundary; allow one ULP of slack.
                assert!(
                    (got - exact).abs() <= 1,
                    "m={m} v={v} exact={exact} got={got}"
                );
            }
        }
    }

    #[test]
    fn apply_exact_for_dyadic_multipliers() {
        // Multipliers that are exact powers of two incur no mantissa error.
        for e in -10..=10i32 {
            let m = f64::powi(2.0, e);
            let fp = FixedPointMultiplier::from_real(m);
            for v in [-1000, -7, -1, 0, 1, 5, 999] {
                let exact = (m * v as f64).floor() as i32;
                assert_eq!(fp.apply(v), exact, "e={e} v={v}");
            }
        }
    }

    #[test]
    fn negative_multiplier_floors_toward_negative_infinity() {
        let fp = FixedPointMultiplier::from_real(-0.5);
        assert_eq!(fp.apply(3), -2); // floor(-1.5) = -2
        assert_eq!(fp.apply(-3), 1); // floor(1.5) = 1
    }

    #[test]
    fn extreme_exponents_do_not_panic() {
        let tiny = FixedPointMultiplier::from_real(1e-60);
        assert_eq!(tiny.apply(i32::MAX), 0);
        let huge = FixedPointMultiplier::from_real(1e30);
        // Saturates instead of overflowing.
        assert_eq!(huge.apply(i32::MAX), i32::MAX);
        assert_eq!(huge.apply(i32::MIN), i32::MIN);
    }

    #[test]
    fn display() {
        let fp = FixedPointMultiplier::from_real(0.75);
        assert!(fp.to_string().contains("2^"));
    }
}
