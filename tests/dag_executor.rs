//! DAG-executor guarantees: residual (MobileNetV2-style) networks train,
//! convert and run integer inference end to end through `QGraph`; the
//! liveness planner's `peak_ram_bytes` matches the executor's measured
//! high-water mark on both chain and residual graphs; parallel batch
//! evaluation is bit-identical to the sequential path; and saturated-INT16
//! threshold deployments execute.

use mixq::core::convert::{convert, scheme_granularity, IntNetwork};
use mixq::core::memory::QuantScheme;
use mixq::core::pipeline::prediction_agreement;
use mixq::data::{Dataset, DatasetSpec, SyntheticKind};
use mixq::kernels::{AnyOp, OpKind, QOp};
use mixq::mcu::CortexM7CycleModel;
use mixq::models::micro::mobilenet_like_residual;
use mixq::nn::qat::{BlockSpec, MicroCnnSpec, QatNetwork};
use mixq::nn::train::{train, TrainConfig};
use mixq::nn::ConvKind;
use mixq::quant::BitWidth;

fn residual_micro_spec() -> MicroCnnSpec {
    // Stem + depthwise/pointwise pair at constant shape, with an identity
    // skip around the pair — one MobileNetV2-ish bottleneck.
    let std_block = |c: usize, kernel: usize| BlockSpec {
        out_channels: c,
        stride: 1,
        kind: ConvKind::Standard,
        kernel,
    };
    let dw_block = |c: usize| BlockSpec {
        out_channels: c,
        stride: 1,
        kind: ConvKind::Depthwise,
        kernel: 3,
    };
    MicroCnnSpec::new(10, 10, 2, 3, &[6])
        .with_blocks(vec![std_block(6, 3), dw_block(6), std_block(6, 1)])
        .with_residual(0, 2)
}

fn dataset() -> Dataset {
    DatasetSpec::new(SyntheticKind::Bars, 10, 10, 2, 3)
        .with_samples(60)
        .with_noise(0.05)
        .generate(41)
}

fn trained_residual(scheme: QuantScheme, bits: BitWidth) -> (QatNetwork, IntNetwork, Dataset) {
    let ds = dataset();
    let spec = residual_micro_spec();
    let mut net = QatNetwork::build(&spec, 61);
    let _ = train(&mut net, &ds, &TrainConfig::fast(4));
    net.calibrate_input(ds.images());
    net.enable_fake_quant(scheme_granularity(scheme));
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, bits);
    }
    net.set_linear_weight_bits(bits);
    let _ = train(&mut net, &ds, &TrainConfig::fast(3));
    let int_net = convert(&net, scheme).expect("residual network converts");
    (net, int_net, ds)
}

/// The acceptance bar of the DAG refactor: a trained residual network
/// lowers onto the graph with a `QAdd` join and its integer predictions
/// track the fake-quantized network, while the add node's ledger is priced
/// by the cycle model.
#[test]
fn residual_network_lowers_and_agrees() {
    let (net, int_net, ds) = trained_residual(QuantScheme::PerChannelIcn, BitWidth::W8);
    // Topology: 3 convs + add + pool + head.
    assert_eq!(int_net.graph().len(), 6);
    let adds: Vec<_> = int_net
        .graph()
        .nodes()
        .iter()
        .filter(|n| matches!(n.op(), AnyOp::Add(_)))
        .collect();
    assert_eq!(adds.len(), 1);
    // The join consumes the pair's pointwise output and the stem output.
    assert_eq!(adds[0].inputs(), &[3, 1]);

    let agreement = prediction_agreement(&net, &int_net, &ds);
    assert!(
        agreement > 0.85,
        "integer residual graph diverged: {agreement}"
    );

    // The add node's ledger: requantization traffic, zero MACs, and the
    // cycle model prices it.
    let run = int_net.infer_detailed(&ds.sample(0).images);
    let add_run = run
        .layers
        .iter()
        .find(|l| l.kind == OpKind::Add)
        .expect("add node executed");
    assert_eq!(add_run.ops.macs, 0);
    assert!(add_run.ops.requants > 0);
    let model = CortexM7CycleModel::default();
    let breakdown = model.breakdown_from_runs(&run.layers);
    let add_latency = breakdown
        .iter()
        .zip(&run.layers)
        .find(|(_, l)| l.kind == OpKind::Add)
        .expect("add priced")
        .0;
    assert!(add_latency.cycles > 0);
    assert_eq!(
        breakdown.iter().map(|l| l.cycles).sum::<u64>(),
        model.cycles_from_runs(&run.layers)
    );
}

/// Planner-reported peak RAM must match the measured high-water mark on
/// both chain and residual graphs — and the residual skip must actually
/// cost RAM beyond the chain's double-buffered pair.
#[test]
fn planner_peak_matches_measured_high_water_mark() {
    // Residual graph.
    let (_, int_net, ds) = trained_residual(QuantScheme::PerChannelIcn, BitWidth::W8);
    let run = int_net.infer_detailed(&ds.sample(0).images);
    assert_eq!(run.peak_live_bytes, int_net.peak_ram_bytes());

    // Chain graph (no residual): same invariant.
    let spec = MicroCnnSpec::separable(8, 8, 2, 3, &[4, 6]);
    let mut net = QatNetwork::build(&spec, 55);
    let ds8 = DatasetSpec::new(SyntheticKind::Bars, 8, 8, 2, 3)
        .with_samples(32)
        .generate(29);
    let _ = train(&mut net, &ds8, &TrainConfig::fast(2));
    net.calibrate_input(ds8.images());
    net.enable_fake_quant(scheme_granularity(QuantScheme::PerChannelIcn));
    let chain = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
    let chain_run = chain.infer_detailed(&ds8.sample(0).images);
    assert_eq!(chain_run.peak_live_bytes, chain.peak_ram_bytes());
}

/// A trained MobileNet-like model with residual bottlenecks lowers through
/// all 27 conv layers plus the `QAdd` joins and runs integer inference end
/// to end.
#[test]
fn mobilenet_like_residual_runs_integer_inference_end_to_end() {
    let spec = mobilenet_like_residual(32, 2, 8, 3);
    assert!(!spec.residuals().is_empty(), "variant declares skips");
    let ds = DatasetSpec::new(SyntheticKind::Bars, 32, 32, 2, 3)
        .with_samples(12)
        .with_noise(0.05)
        .generate(77);
    let mut net = QatNetwork::build(&spec, 99);
    assert_eq!(net.num_blocks(), 27, "MobileNetV1 stem + 13 pairs");
    let _ = train(&mut net, &ds, &TrainConfig::fast(1));
    net.calibrate_input(ds.images());
    net.enable_fake_quant(scheme_granularity(QuantScheme::PerChannelIcn));
    let _ = train(&mut net, &ds, &TrainConfig::fast(1));
    let int_net = convert(&net, QuantScheme::PerChannelIcn).expect("mobilenet converts");

    let adds = int_net
        .graph()
        .nodes()
        .iter()
        .filter(|n| matches!(n.op(), AnyOp::Add(_)))
        .count();
    assert_eq!(adds, spec.residuals().len());
    assert_eq!(int_net.graph().len(), 27 + adds + 2);
    assert_eq!(int_net.layers().len(), 27);

    let run = int_net.infer_detailed(&ds.sample(0).images);
    assert_eq!(run.layers.len(), int_net.graph().len());
    assert_eq!(run.clone().into_logits().len(), 3);
    assert_eq!(run.peak_live_bytes, int_net.peak_ram_bytes());
    assert!(run.total_ops().macs > 0);
    // Flash accounting covers the adds too.
    let node_sum: usize = int_net
        .graph()
        .nodes()
        .iter()
        .map(|n| QOp::flash_bytes(n.op()))
        .sum();
    assert_eq!(int_net.flash_bytes(), node_sum);
}

/// The sharded evaluator must reproduce the sequential accuracy and op
/// ledger exactly, for worker counts that divide the dataset and ones that
/// do not.
#[test]
fn parallel_evaluate_is_identical_to_sequential() {
    let (_, int_net, ds) = trained_residual(QuantScheme::PerChannelIcn, BitWidth::W4);
    let (acc_seq, ops_seq) = int_net.evaluate(&ds);
    for workers in [1, 3, 4, 64] {
        let (acc_par, ops_par) = int_net.evaluate_parallel(&ds, workers);
        assert_eq!(acc_seq, acc_par, "{workers} workers");
        assert_eq!(ops_seq, ops_par, "{workers} workers");
    }
}

/// Saturating the threshold tables to INT16 yields a runnable deployment;
/// on a micro net whose thresholds fit INT16 it is lossless, and the
/// rewrite leaves non-threshold schemes untouched.
#[test]
fn saturated_threshold_deployment_executes() {
    let (_, thr, ds) = trained_residual(QuantScheme::PerChannelThresholds, BitWidth::W4);
    let sat = thr.with_saturated_thresholds();
    let (acc_full, _) = thr.evaluate(&ds);
    let (acc_sat, _) = sat.evaluate(&ds);
    // The saturated deployment runs end to end; accuracy may only degrade.
    assert!(acc_sat <= acc_full + 1e-6);
    assert!(acc_sat >= 0.0);
    // ICN networks carry no tables: the rewrite is the identity.
    let (_, icn, _) = trained_residual(QuantScheme::PerChannelIcn, BitWidth::W4);
    assert_eq!(icn.with_saturated_thresholds(), icn);
}
