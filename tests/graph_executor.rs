//! Executor-refactor guarantees: the `QGraph`-based `IntNetwork` must be
//! *bit-identical* — logits and `OpCounts` — to the hand-rolled
//! layer-by-layer loop it replaced, and its per-layer ledger must fold
//! into the same totals the flat counters report.

use mixq::core::convert::{convert, scheme_granularity, IntNetwork};
use mixq::core::memory::QuantScheme;
use mixq::data::{Dataset, DatasetSpec, SyntheticKind};
use mixq::kernels::{ActivationArena, OpCounts, OpKind, QAvgPool};
use mixq::mcu::CortexM7CycleModel;
use mixq::nn::qat::{MicroCnnSpec, QatNetwork};
use mixq::nn::train::{train, TrainConfig};
use mixq::quant::BitWidth;

fn dataset() -> Dataset {
    DatasetSpec::new(SyntheticKind::Bars, 8, 8, 2, 3)
        .with_samples(64)
        .with_noise(0.05)
        .generate(29)
}

/// Trains a MobileNet-style depthwise-separable micro CNN (standard stem +
/// dw/pw pairs) and converts it under `scheme`.
fn trained_separable(scheme: QuantScheme, bits: BitWidth) -> (IntNetwork, Dataset) {
    let ds = dataset();
    let spec = MicroCnnSpec::separable(8, 8, 2, 3, &[4, 6]);
    let mut net = QatNetwork::build(&spec, 55);
    let _ = train(&mut net, &ds, &TrainConfig::fast(4));
    net.calibrate_input(ds.images());
    net.enable_fake_quant(scheme_granularity(scheme));
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, bits);
    }
    net.set_linear_weight_bits(bits);
    let _ = train(&mut net, &ds, &TrainConfig::fast(3));
    let int_net = convert(&net, scheme).expect("trained network converts");
    (int_net, ds)
}

/// The acceptance bar of the refactor: graph-routed inference reproduces
/// the hand-rolled conv-stack loop exactly, op count for op count.
#[test]
fn graph_infer_is_bit_identical_to_hand_rolled_loop() {
    for (scheme, bits) in [
        (QuantScheme::PerChannelIcn, BitWidth::W8),
        (QuantScheme::PerChannelIcn, BitWidth::W4),
        (QuantScheme::PerChannelThresholds, BitWidth::W4),
    ] {
        let (int_net, ds) = trained_separable(scheme, bits);
        for i in 0..8 {
            let image = &ds.sample(i).images;
            let (logits, ops) = int_net.infer(image);

            // The loop the refactor replaced: conv stack → pool → head.
            let mut manual_ops = OpCounts::default();
            let mut x = int_net.quantize_input(image);
            for layer in int_net.layers() {
                x = layer.execute(&x, &mut manual_ops);
            }
            let pooled = QAvgPool.execute(&x, &mut manual_ops);
            let manual_logits = int_net.linear().execute(&pooled, &mut manual_ops);

            assert_eq!(
                logits,
                manual_logits,
                "{scheme} w{} sample {i}",
                bits.bits()
            );
            assert_eq!(ops, manual_ops, "{scheme} w{} sample {i}", bits.bits());
        }
    }
}

#[test]
fn separable_network_lowers_onto_graph_with_depthwise_nodes() {
    let (int_net, ds) = trained_separable(QuantScheme::PerChannelIcn, BitWidth::W8);
    let run = int_net.infer_detailed(&ds.sample(0).images);
    // Stem + (dw, pw) pair + pool + head = 5 nodes for pair_channels [4, 6].
    assert_eq!(run.layers.len(), 5);
    let kinds: Vec<OpKind> = run.layers.iter().map(|l| l.kind).collect();
    assert_eq!(
        kinds,
        [
            OpKind::Conv,
            OpKind::DepthwiseConv,
            OpKind::Conv,
            OpKind::Pool,
            OpKind::Linear
        ]
    );
    // The ledger folds into the flat totals.
    let (_, total) = int_net.infer(&ds.sample(0).images);
    assert_eq!(run.total_ops(), total);
    // And the cycle model prices depthwise nodes at their own rate.
    let model = CortexM7CycleModel::default();
    let breakdown = model.breakdown_from_runs(&run.layers);
    assert_eq!(breakdown.len(), run.layers.len());
    assert_eq!(
        breakdown.iter().map(|l| l.cycles).sum::<u64>(),
        model.cycles_from_runs(&run.layers)
    );
    let dw = &breakdown[1];
    assert!(
        dw.name.starts_with("dw"),
        "node names flow through: {}",
        dw.name
    );
    assert!(dw.cycles > 0 && dw.macs > 0);
}

#[test]
fn accounting_routes_through_the_graph() {
    let (int_net, _) = trained_separable(QuantScheme::PerChannelIcn, BitWidth::W4);
    // flash: network == graph == sum of per-node footprints.
    assert_eq!(int_net.flash_bytes(), int_net.graph().flash_bytes());
    let node_sum: usize = int_net
        .graph()
        .nodes()
        .iter()
        .map(|n| mixq::kernels::QOp::flash_bytes(n.op()))
        .sum();
    assert_eq!(int_net.flash_bytes(), node_sum);
    // peak RAM: the graph walk agrees with the network façade.
    let input = int_net.graph().nodes();
    assert!(!input.is_empty());
    assert!(int_net.peak_ram_bytes() > 0);
}

#[test]
fn arena_reuse_matches_fresh_runs_across_a_dataset() {
    let (int_net, ds) = trained_separable(QuantScheme::PerChannelIcn, BitWidth::W8);
    let mut arena = ActivationArena::new();
    for i in 0..6 {
        let x = int_net.quantize_input(&ds.sample(i).images);
        let fresh = int_net.graph().run(x.clone());
        let reused = int_net.graph().run_with_arena(x, &mut arena);
        assert_eq!(fresh, reused, "sample {i}");
    }
}
