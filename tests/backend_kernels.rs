//! Backend / kernel-selection integration tests: the memory model and the
//! Cortex-M7 cycle model must agree with the kernel each node *actually*
//! selected — for both shipped backends — and execution must stay
//! bit-identical across selections.

use mixq::kernels::{
    im2col_scratch_bytes, AnyOp, Backend, KernelChoice, OpKind, QActivation, QAdd, QAvgPool,
    QConv2d, QConvWeights, QGraph, QLinear, QOp, ReferenceBackend, Requantizer, TiledBackend,
    WeightOffset,
};
use mixq::mcu::CortexM7CycleModel;
use mixq::quant::{BitWidth, FixedPointMultiplier};
use mixq::tensor::{ConvGeometry, Padding, Shape};

fn icn(co: usize, bits: BitWidth) -> Requantizer {
    Requantizer::icn(
        vec![1; co],
        vec![FixedPointMultiplier::from_real(0.01); co],
        0,
        bits,
    )
}

fn depthwise(c: usize) -> QConv2d {
    let shape = Shape::new(c, 3, 3, 1);
    let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 16) as u8).collect();
    QConv2d::new(
        QConvWeights::new(
            shape,
            true,
            &codes,
            BitWidth::W4,
            WeightOffset::PerChannel(vec![1; c]),
        ),
        ConvGeometry::new(3, 3, 1, Padding::Same),
        icn(c, BitWidth::W8),
    )
}

fn pointwise(ci: usize, co: usize) -> QConv2d {
    let shape = Shape::new(co, 1, 1, ci);
    let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 16) as u8).collect();
    QConv2d::new(
        QConvWeights::new(
            shape,
            false,
            &codes,
            BitWidth::W4,
            WeightOffset::PerChannel((0..co).map(|c| c as i16 % 3).collect()),
        ),
        ConvGeometry::pointwise(),
        icn(co, BitWidth::W8),
    )
}

fn dense3x3(ci: usize, co: usize) -> QConv2d {
    let shape = Shape::new(co, 3, 3, ci);
    let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 4) as u8).collect();
    QConv2d::new(
        QConvWeights::new(
            shape,
            false,
            &codes,
            BitWidth::W2,
            WeightOffset::PerLayer(1),
        ),
        ConvGeometry::new(3, 3, 1, Padding::Same),
        icn(co, BitWidth::W8),
    )
}

fn head(ci: usize, classes: usize) -> QLinear {
    let codes: Vec<u8> = (0..classes * ci).map(|i| (i % 7) as u8).collect();
    QLinear::new(
        QConvWeights::new(
            Shape::new(classes, 1, 1, ci),
            false,
            &codes,
            BitWidth::W4,
            WeightOffset::PerLayer(3),
        ),
        vec![5; classes],
        None,
    )
}

/// A residual depthwise-separable stack: stem conv, dw/pw pair with an
/// identity skip, pool, classifier.
fn residual_graph(input: Shape) -> QGraph {
    let mut g = QGraph::with_input(input, BitWidth::W8);
    let stem = g.push("stem", dense3x3(input.c, 4));
    let dw = g.push_node("dw", depthwise(4), &[stem]);
    let pw = g.push_node("pw", pointwise(4, 4), &[dw]);
    g.push_node(
        "res",
        QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, BitWidth::W8),
        &[pw, stem],
    );
    g.push("pool", QAvgPool);
    g.push("fc", head(4, 3));
    g
}

fn input_act(shape: Shape) -> QActivation {
    let codes: Vec<u8> = (0..shape.volume()).map(|i| (i % 19) as u8).collect();
    QActivation::from_codes(shape, &codes, BitWidth::W8, 2)
}

/// Recomputes `peak_scratch_bytes` from each node's actual choice by hand:
/// GEMM-lowered convs price their im2col expansion, except the blocked
/// kernel's pointwise identity path over an 8-bit input, which borrows the
/// packed input zero-copy.
fn manual_peak_scratch(g: &QGraph, input: Shape) -> usize {
    let mut shapes = vec![input];
    let mut bits = vec![BitWidth::W8];
    let mut peak = 0usize;
    for node in g.nodes() {
        let in_shapes: Vec<Shape> = node.inputs().iter().map(|&t| shapes[t]).collect();
        let in_bits: Vec<BitWidth> = node.inputs().iter().map(|&t| bits[t]).collect();
        let expansion = match (node.op(), node.choice()) {
            (AnyOp::Conv(c), KernelChoice::Im2colGemm) => im2col_scratch_bytes(c, in_shapes[0]),
            (AnyOp::Conv(c), KernelChoice::BlockedGemm) if !c.blocked_borrows_input(in_bits[0]) => {
                im2col_scratch_bytes(c, in_shapes[0])
            }
            _ => 0,
        };
        peak = peak.max(expansion);
        shapes.push(node.op().output_shape(&in_shapes));
        bits.push(node.op().out_bits(&in_bits));
    }
    peak
}

#[test]
fn cycle_model_agrees_with_selected_kernels_for_both_backends() {
    let input = Shape::feature_map(8, 8, 2);
    let model = CortexM7CycleModel::default();
    for backend in [
        &ReferenceBackend as &dyn Backend,
        &TiledBackend::default() as &dyn Backend,
    ] {
        let mut g = residual_graph(input);
        g.select_kernels(backend);
        let run = g.run(input_act(input));
        let breakdown = model.breakdown_from_runs(&run.layers);
        for (layer, latency) in run.layers.iter().zip(&breakdown) {
            // The breakdown prices exactly the kernel the node selected.
            assert_eq!(
                latency.cycles,
                model.kernel_cycles(layer.kind, layer.choice, &layer.ops),
                "{} ({}, {})",
                layer.name,
                backend.name(),
                layer.choice
            );
        }
        assert_eq!(
            model.cycles_from_runs(&run.layers),
            breakdown.iter().map(|l| l.cycles).sum::<u64>()
        );
        // The run records the graph's resolved choices node for node.
        let recorded: Vec<KernelChoice> = run.layers.iter().map(|l| l.choice).collect();
        assert_eq!(recorded, g.kernel_choices(), "{}", backend.name());
    }
}

#[test]
fn tiled_selection_lowers_cycles_on_dense_convs_only() {
    let input = Shape::feature_map(8, 8, 2);
    let reference = residual_graph(input);
    let mut tiled = residual_graph(input);
    tiled.select_kernels(&TiledBackend::default());
    assert_eq!(
        tiled.kernel_choices(),
        vec![
            KernelChoice::BlockedGemm, // stem: dense 3x3
            KernelChoice::DirectConv,  // depthwise
            KernelChoice::BlockedGemm, // pointwise
            KernelChoice::DirectConv,  // residual add
            KernelChoice::DirectConv,  // pool
            KernelChoice::DirectConv,  // head
        ]
    );
    let model = CortexM7CycleModel::default();
    let run_ref = reference.run(input_act(input));
    let run_tiled = tiled.run(input_act(input));
    let br_ref = model.breakdown_from_runs(&run_ref.layers);
    let br_tiled = model.breakdown_from_runs(&run_tiled.layers);
    // The pointwise node has no padded taps: same MACs, cheaper rate.
    assert_eq!(run_ref.layers[2].ops.macs, run_tiled.layers[2].ops.macs);
    assert!(
        br_tiled[2].cycles < br_ref[2].cycles,
        "blocked GEMM must model cheaper than direct: {} vs {}",
        br_tiled[2].cycles,
        br_ref[2].cycles
    );
    // Single-kernel ops are priced identically under both backends.
    for i in [1usize, 3, 4, 5] {
        assert_eq!(br_ref[i].cycles, br_tiled[i].cycles, "node {i}");
        assert_ne!(run_ref.layers[i].kind, OpKind::Conv);
    }
}

#[test]
fn scratch_and_ram_models_track_actual_selection() {
    let input = Shape::feature_map(8, 8, 2);
    for backend in [
        &ReferenceBackend as &dyn Backend,
        &TiledBackend::default() as &dyn Backend,
    ] {
        let mut g = residual_graph(input);
        g.select_kernels(backend);
        assert_eq!(
            g.peak_scratch_bytes(input, BitWidth::W8),
            manual_peak_scratch(&g, input),
            "{}",
            backend.name()
        );
        // Eq. 7 peak RAM is dataflow-independent: live activations do not
        // change with the kernel choice, and the measured high-water mark
        // agrees exactly under both backends.
        let run = g.run(input_act(input));
        assert_eq!(
            run.peak_live_bytes,
            g.peak_ram_bytes(input, BitWidth::W8),
            "{}",
            backend.name()
        );
    }
    // Concrete scratch numbers: reference prices nothing; tiled prices the
    // stem's 3×3 expansion (64 pixels × 9 taps × 2 channels) — the
    // pointwise node borrows its 8-bit input zero-copy and prices zero.
    let reference = residual_graph(input);
    assert_eq!(reference.peak_scratch_bytes(input, BitWidth::W8), 0);
    let mut tiled = residual_graph(input);
    tiled.select_kernels(&TiledBackend::default());
    assert_eq!(tiled.peak_scratch_bytes(input, BitWidth::W8), 8 * 8 * 9 * 2);
}

#[test]
fn prepack_caches_follow_the_selected_kernel() {
    use mixq::kernels::PrepackedWeights;
    let input = Shape::feature_map(8, 8, 2);
    let mut g = residual_graph(input);
    g.select_kernels(&TiledBackend::default());
    // BlockedGemm convs cache interleaved panels; direct sub-byte ops
    // (depthwise, head) cache decoded codes; weight-free ops cache nothing.
    let caches: Vec<Option<&PrepackedWeights>> = g.nodes().iter().map(|n| n.prepacked()).collect();
    assert!(
        matches!(caches[0], Some(PrepackedWeights::Panels(_))),
        "stem"
    );
    assert!(
        matches!(caches[1], Some(PrepackedWeights::Codes(_))),
        "dw (W4)"
    );
    assert!(matches!(caches[2], Some(PrepackedWeights::Panels(_))), "pw");
    assert!(caches[3].is_none(), "residual add has no weights");
    assert!(caches[4].is_none(), "pool has no weights");
    assert!(
        matches!(caches[5], Some(PrepackedWeights::Codes(_))),
        "fc (W4)"
    );
    // One-time packing ledgers exist exactly where a cache exists, and the
    // cycle model reports them separately from the steady state.
    let run = g.run(input_act(input));
    let model = CortexM7CycleModel::default();
    let breakdown = model.breakdown_from_runs(&run.layers);
    for (node, (lr, lat)) in g.nodes().iter().zip(run.layers.iter().zip(&breakdown)) {
        assert_eq!(lr.prepack, node.prepack_ops(), "{}", node.name());
        assert_eq!(
            lat.one_time_cycles,
            model.prepack_cycles(&lr.prepack),
            "{}",
            node.name()
        );
        assert_eq!(
            node.prepacked().is_some(),
            node.prepack_ops() != Default::default()
        );
    }
    assert!(model.one_time_packing_cycles(&run.layers) > 0);
    assert!(g.prepacked_bytes() > 0);

    // Clearing the caches reverts to per-call packing — bit-identical.
    let mut cleared = g.clone();
    cleared.clear_prepack();
    assert_eq!(cleared.prepacked_bytes(), 0);
    let run_cleared = cleared.run(input_act(input));
    assert_eq!(run.logits, run_cleared.logits);
    // Ledgers agree too: the abstract op counts describe the deployed
    // algorithm, not the host-side caching.
    assert_eq!(run.total_ops(), run_cleared.total_ops());
    // Cleared nodes report no one-time packing.
    assert!(run_cleared
        .layers
        .iter()
        .all(|l| l.prepack == Default::default()));
}

#[test]
fn tiled_backend_rates_mirror_cycle_model() {
    // TiledBackend's selection constants are hand-mirrored copies of the
    // Cortex-M7 model's per-choice rates (the kernels crate cannot depend
    // on mixq-mcu). This assertion makes tuning one side without the other
    // fail loudly instead of silently diverging selection from pricing.
    let model = CortexM7CycleModel::default();
    let backend = TiledBackend::default();
    assert_eq!(backend.direct_mac_cycles, model.conv_cycles_per_mac);
    assert_eq!(
        backend.blocked_mac_cycles,
        model.blocked_gemm_cycles_per_mac
    );
}

#[test]
fn scratch_limited_backend_falls_back_to_direct() {
    let input = Shape::feature_map(8, 8, 2);
    // A ceiling below the stem's expansion but above the pointwise one:
    // the backend must lower only the pointwise conv.
    let limited = TiledBackend::default().with_scratch_limit(300);
    let mut g = residual_graph(input);
    g.select_kernels(&limited);
    assert_eq!(g.kernel_choices()[0], KernelChoice::DirectConv);
    assert_eq!(g.kernel_choices()[2], KernelChoice::BlockedGemm);
    assert!(g.peak_scratch_bytes(input, BitWidth::W8) <= 300);
    // Still bit-identical to the unconstrained selections.
    let full = residual_graph(input);
    assert_eq!(
        g.run(input_act(input)).logits,
        full.run(input_act(input)).logits
    );
}
