//! Property-based tests (proptest) on the core quantization data
//! structures and algorithms: round-trips, fixed-point accuracy, threshold
//! equivalence, kernel/float agreement, constraint satisfaction of the
//! memory-driven assignment on randomized network shapes, and spec-vs-
//! executor agreement of the liveness peak on randomized residual DAGs.

mod common;

use proptest::prelude::*;

use mixq::core::memory::{MemoryBudget, QuantScheme};
use mixq::core::mixed::{assign_bits, MixedPrecisionConfig};
use mixq::kernels::{
    AnyOp, Backend, KernelChoice, OpCounts, QActivation, QConv2d, QConvWeights, QGraph, QLinear,
    ReferenceBackend, Requantizer, SimdLevel, ThresholdChannel, TiledBackend, WeightOffset,
};
use mixq::models::{LayerSpec, NetworkSpec};
use mixq::quant::{BitWidth, FixedPointMultiplier, PackedTensor, QuantParams};
use mixq::tensor::{ConvGeometry, Padding, Shape};

fn bitwidth_strategy() -> impl Strategy<Value = BitWidth> {
    prop_oneof![Just(BitWidth::W2), Just(BitWidth::W4), Just(BitWidth::W8),]
}

/// Deterministic random residual DAG shared by the equivalence proptests:
/// a `depth`-layer conv stack (optionally capped by an identity skip), an
/// average pool and a linear head, plus a matching batched input — the
/// same generator family as `batch_matches_single_sample_logits`.
#[allow(clippy::too_many_arguments)]
fn random_residual_dag(
    depth: usize,
    ch: usize,
    h: usize,
    k: usize,
    batch: usize,
    wbits: BitWidth,
    abits: BitWidth,
    with_skip: bool,
    tiled: bool,
    zx: u8,
    seed: u64,
) -> (QGraph, QActivation) {
    let input = Shape::feature_map(h, h, ch);
    let layer = |l: usize, out_bits: BitWidth| {
        let wshape = Shape::new(ch, k, k, ch);
        let wcodes: Vec<u8> = (0..wshape.volume())
            .map(|i| ((i as u64 * 31 + seed * 7 + l as u64) % wbits.levels() as u64) as u8)
            .collect();
        QConv2d::new(
            QConvWeights::new(
                wshape,
                false,
                &wcodes,
                wbits,
                WeightOffset::PerChannel((0..ch).map(|c| (c as i16 % 5) - 2).collect()),
            ),
            ConvGeometry::new(k, k, 1, Padding::Same),
            Requantizer::icn(
                (0..ch).map(|c| c as i32 - 1).collect(),
                (0..ch)
                    .map(|c| FixedPointMultiplier::from_real(0.02 + c as f64 * 0.004))
                    .collect(),
                0,
                out_bits,
            ),
        )
    };
    let head = QLinear::new(
        QConvWeights::new(
            Shape::new(3, 1, 1, ch),
            false,
            &(0..3 * ch)
                .map(|i| ((i as u64 * 11 + seed) % 16) as u8)
                .collect::<Vec<_>>(),
            BitWidth::W4,
            WeightOffset::PerLayer(2),
        ),
        vec![1, -2, 3],
        None,
    );
    let mut g = QGraph::with_input(input, BitWidth::W8);
    let mut id = 0usize;
    for l in 0..depth {
        id = g.push_node(
            format!("c{l}"),
            layer(l, if l + 1 == depth { BitWidth::W8 } else { abits }),
            &[id],
        );
    }
    if with_skip {
        id = g.push_node(
            "res",
            mixq::kernels::QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, BitWidth::W8),
            &[id, 0],
        );
    }
    let _ = id;
    g.push("pool", mixq::kernels::QAvgPool);
    g.push("fc", head);
    if tiled {
        g.select_kernels(&TiledBackend::default());
    }
    let item = input.volume();
    let mut stacked = Vec::with_capacity(batch * item);
    for s in 0..batch {
        stacked.extend((0..item).map(|i| (((s * item + i) as u64 * 13 + seed) % 200) as u8));
    }
    let xb = QActivation::from_codes(input.with_batch(batch), &stacked, BitWidth::W8, zx);
    (g, xb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantizer_round_trip_error_bounded(
        lo in -100.0f32..0.0,
        span in 0.01f32..200.0,
        bits in bitwidth_strategy(),
        x in -150.0f32..150.0,
    ) {
        let q = QuantParams::from_min_max(lo, lo + span, bits);
        let x_clamped = x.clamp(q.range_min(), q.range_max());
        let err = (q.fake_quantize(x_clamped) - x_clamped).abs();
        // Nearest rounding: half a step plus float slack.
        prop_assert!(err <= 0.5 * q.scale() * 1.001 + 1e-5,
                     "err {err} step {}", q.scale());
    }

    #[test]
    fn pact_quantizer_floor_error_bounded(
        clip in 0.1f32..50.0,
        bits in bitwidth_strategy(),
        x in -10.0f32..60.0,
    ) {
        let q = QuantParams::from_pact_clip(clip, bits);
        let x_clamped = x.clamp(0.0, clip);
        let fq = q.fake_quantize(x_clamped);
        // Floor rounding: strictly below one full step.
        prop_assert!(fq <= x_clamped + 1e-5);
        prop_assert!(x_clamped - fq < q.scale() * 1.001 + 1e-5);
    }

    #[test]
    fn packing_round_trips(
        bits in bitwidth_strategy(),
        raw in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let mask = bits.qmax() as u8;
        let codes: Vec<u8> = raw.iter().map(|v| v & mask).collect();
        let packed = PackedTensor::pack(&codes, bits);
        prop_assert_eq!(packed.unpack(), codes.clone());
        prop_assert_eq!(packed.byte_len(), bits.bytes_for(codes.len()));
        for (i, &c) in codes.iter().enumerate() {
            prop_assert_eq!(packed.get(i), c);
        }
    }

    #[test]
    fn fixed_point_apply_matches_float_floor(
        mantissa in -1000000i32..1000000,
        exp in -12i32..12,
        v in -100000i32..100000,
    ) {
        prop_assume!(mantissa != 0);
        let m = mantissa as f64 / 1e5 * f64::powi(2.0, exp);
        let fp = FixedPointMultiplier::from_real(m);
        let exact = (m * v as f64).floor();
        let got = fp.apply(v) as f64;
        // Q31 mantissa rounding can move the product across an integer
        // boundary: allow one unit.
        prop_assert!((got - exact).abs() <= 1.0, "m={m} v={v} got={got} exact={exact}");
    }

    #[test]
    fn threshold_tables_equal_affine_requant(
        m_raw in -200i32..200,
        bq in -500i64..500,
        zy in 0i32..16,
        bits in bitwidth_strategy(),
        phi in -2000i64..2000,
    ) {
        prop_assume!(m_raw != 0);
        let m = m_raw as f64 / 100.0;
        let ch = ThresholdChannel::from_affine(m, bq, zy, bits);
        let mut cmps = 0;
        let got = ch.eval(phi, &mut cmps) as i64;
        let exact = (zy as i64 + (m * (phi + bq) as f64).floor() as i64)
            .clamp(0, bits.qmax() as i64);
        // When m·(phi+bq) lands exactly on an integer, the two float
        // evaluation orders may legitimately disagree by one ulp → one code.
        prop_assert!((got - exact).abs() <= 1,
                     "m={} bq={} zy={} phi={}: {} vs {}", m, bq, zy, phi, got, exact);
    }

    #[test]
    fn icn_requant_within_one_code_of_exact(
        m_raw in -200i32..200,
        bq in -500i32..500,
        phi in -5000i64..5000,
        bits in bitwidth_strategy(),
    ) {
        prop_assume!(m_raw != 0);
        let m = m_raw as f64 / 317.0;
        let req = Requantizer::icn(
            vec![bq],
            vec![FixedPointMultiplier::from_real(m)],
            0,
            bits,
        );
        let mut r = 0;
        let mut c = 0;
        let got = req.apply(0, phi, &mut r, &mut c) as i64;
        let exact = ((m * (phi + bq as i64) as f64).floor() as i64)
            .clamp(0, bits.qmax() as i64);
        prop_assert!((got - exact).abs() <= 1);
    }

    #[test]
    fn integer_conv_matches_float_reference(
        codes in proptest::collection::vec(0u8..=15, 16),
        wcodes in proptest::collection::vec(0u8..=15, 9),
        zx in 0u8..=7,
        zw in 0u8..=7,
    ) {
        // 4x4 input, one channel, 3x3 SAME conv; identity requant to W8.
        let w = QConvWeights::new(
            Shape::new(1, 3, 3, 1),
            false,
            &wcodes,
            BitWidth::W4,
            WeightOffset::PerLayer(zw),
        );
        let conv = QConv2d::new(
            w,
            ConvGeometry::new(3, 3, 1, Padding::Same),
            Requantizer::icn(
                vec![0],
                vec![FixedPointMultiplier::from_real(0.25)],
                0,
                BitWidth::W8,
            ),
        );
        let x = QActivation::from_codes(Shape::feature_map(4, 4, 1), &codes, BitWidth::W4, zx);
        let mut ops = OpCounts::default();
        let y = conv.execute(&x, &mut ops);
        // Float reference computed the same way (floor of quarter of Φ).
        for oy in 0..4usize {
            for ox in 0..4usize {
                let mut acc = 0i64;
                for ky in 0..3usize {
                    for kx in 0..3usize {
                        let iy = oy as isize + ky as isize - 1;
                        let ix = ox as isize + kx as isize - 1;
                        if !(0..4).contains(&iy) || !(0..4).contains(&ix) {
                            continue;
                        }
                        let xv = codes[(iy * 4 + ix) as usize] as i64 - zx as i64;
                        let wv = wcodes[ky * 3 + kx] as i64 - zw as i64;
                        acc += xv * wv;
                    }
                }
                let expected = ((acc as f64) * 0.25).floor().clamp(0.0, 255.0) as u8;
                let got = y.get(0, oy, ox, 0);
                prop_assert!((got as i16 - expected as i16).abs() <= 1,
                             "({oy},{ox}): {got} vs {expected}");
            }
        }
        prop_assert_eq!(ops.macs as usize,
                        (0..4).flat_map(|oy: i32| (0..4).map(move |ox: i32| {
                            let mut n = 0;
                            for ky in 0..3 {
                                for kx in 0..3 {
                                    let iy = oy + ky - 1;
                                    let ix = ox + kx - 1;
                                    if (0..4).contains(&iy) && (0..4).contains(&ix) { n += 1; }
                                }
                            }
                            n
                        })).sum::<usize>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_path_equals_direct_path(
        co in 1usize..5,
        ci in 1usize..4,
        k in prop_oneof![Just(1usize), Just(3usize)],
        stride in 1usize..3,
        h in 3usize..8,
        zx in 0u8..6,
        per_channel in any::<bool>(),
        seed in 0u64..1000,
    ) {
        // Randomized layer; codes derived deterministically from the seed.
        let wshape = Shape::new(co, k, k, ci);
        let wcodes: Vec<u8> = (0..wshape.volume())
            .map(|i| ((i as u64 * 31 + seed * 7) % 16) as u8)
            .collect();
        let offset = if per_channel {
            WeightOffset::PerChannel((0..co).map(|c| (c as i16 % 5) - 2).collect())
        } else {
            WeightOffset::PerLayer(2)
        };
        let weights = QConvWeights::new(wshape, false, &wcodes, BitWidth::W4, offset);
        let requant = Requantizer::icn(
            (0..co).map(|c| c as i32 - 1).collect(),
            (0..co)
                .map(|c| FixedPointMultiplier::from_real(0.01 + c as f64 * 0.005))
                .collect(),
            0,
            BitWidth::W8,
        );
        let conv = QConv2d::new(
            weights,
            ConvGeometry::new(k, k, stride, Padding::Same),
            requant,
        );
        let in_shape = Shape::feature_map(h, h, ci);
        let codes: Vec<u8> = (0..in_shape.volume())
            .map(|i| ((i as u64 * 13 + seed) % 200) as u8)
            .collect();
        let x = QActivation::from_codes(in_shape, &codes, BitWidth::W8, zx);
        let mut oa = OpCounts::default();
        let mut ob = OpCounts::default();
        let mut oc = OpCounts::default();
        let direct = conv.execute(&x, &mut oa);
        let gemm = conv.execute_gemm(&x, &mut ob);
        let blocked = conv.execute_blocked(&x, &mut oc);
        prop_assert_eq!(&direct, &gemm);
        prop_assert_eq!(&direct, &blocked);
        prop_assert_eq!(oa.requants, ob.requants);
        // The two GEMM dataflows charge identical abstract ledgers.
        prop_assert_eq!(ob, oc);
    }

    #[test]
    fn backends_produce_bit_identical_logits(
        depth in 1usize..4,
        ch in 1usize..6,
        h in 4usize..9,
        k in prop_oneof![Just(1usize), Just(3usize)],
        wbits in bitwidth_strategy(),
        abits in bitwidth_strategy(),
        zx in 0u8..4,
        seed in 0u64..1000,
    ) {
        // A head-terminated conv stack under random shapes and mixed
        // bit-widths, selected three ways: direct everywhere (reference),
        // im2col GEMM everywhere (custom backend), and the cost-driven
        // tiled backend. Logits must be bit-identical — backends trade
        // dataflow, never arithmetic.
        struct NaiveGemmEverywhere;
        impl Backend for NaiveGemmEverywhere {
            fn name(&self) -> &'static str { "naive-gemm" }
            fn select(&self, op: &AnyOp, _i: &[Shape], _b: &[BitWidth]) -> KernelChoice {
                match op {
                    AnyOp::Conv(c) if !c.weights().is_depthwise() => KernelChoice::Im2colGemm,
                    _ => KernelChoice::DirectConv,
                }
            }
        }
        let input = Shape::feature_map(h, h, ch);
        let layer = |l: usize, out_bits: BitWidth| {
            let wshape = Shape::new(ch, k, k, ch);
            let wcodes: Vec<u8> = (0..wshape.volume())
                .map(|i| ((i as u64 * 31 + seed * 7 + l as u64) % wbits.levels() as u64) as u8)
                .collect();
            QConv2d::new(
                QConvWeights::new(wshape, false, &wcodes, wbits,
                                  WeightOffset::PerChannel((0..ch).map(|c| (c as i16 % 5) - 2).collect())),
                ConvGeometry::new(k, k, 1, Padding::Same),
                Requantizer::icn(
                    (0..ch).map(|c| c as i32 - 1).collect(),
                    (0..ch)
                        .map(|c| FixedPointMultiplier::from_real(0.02 + c as f64 * 0.004))
                        .collect(),
                    0,
                    out_bits,
                ),
            )
        };
        let head = QLinear::new(
            QConvWeights::new(
                Shape::new(3, 1, 1, ch),
                false,
                &(0..3 * ch).map(|i| ((i as u64 * 11 + seed) % 16) as u8).collect::<Vec<_>>(),
                BitWidth::W4,
                WeightOffset::PerLayer(2),
            ),
            vec![1, -2, 3],
            None,
        );
        let build = || {
            let mut g = QGraph::with_input(input, BitWidth::W8);
            for l in 0..depth {
                // Interior activations at the random precision, ending W8.
                g.push(format!("c{l}"), layer(l, if l + 1 == depth { BitWidth::W8 } else { abits }));
            }
            g.push("pool", mixq::kernels::QAvgPool);
            g.push("fc", head.clone());
            g
        };
        let reference = build();
        let mut gemm = build();
        gemm.select_kernels(&NaiveGemmEverywhere);
        let mut tiled = build();
        tiled.select_kernels(&TiledBackend::default());
        prop_assert!(reference.kernel_choices().iter().all(|&c| c == KernelChoice::DirectConv));
        prop_assert!(gemm.kernel_choices()[..depth].iter().all(|&c| c == KernelChoice::Im2colGemm));

        let codes: Vec<u8> = (0..input.volume())
            .map(|i| ((i as u64 * 13 + seed) % 200) as u8)
            .collect();
        let x = QActivation::from_codes(input, &codes, BitWidth::W8, zx);
        let a = reference.run(x.clone());
        let b = gemm.run(x.clone());
        let c = tiled.run(x);
        prop_assert_eq!(a.logits.as_ref(), b.logits.as_ref());
        prop_assert_eq!(a.logits.as_ref(), c.logits.as_ref());
        // The reference backend prices no scratch; a GEMM selection prices
        // exactly its largest im2col expansion.
        prop_assert_eq!(reference.peak_scratch_bytes(input, BitWidth::W8), 0);
        prop_assert_eq!(
            gemm.peak_scratch_bytes(input, BitWidth::W8),
            h * h * k * k * ch
        );
        // Re-selecting with the reference backend round-trips exactly.
        let mut back = tiled.clone();
        back.select_kernels(&ReferenceBackend);
        prop_assert_eq!(back, reference);
    }

    #[test]
    fn prepacked_execution_is_bit_identical_to_per_call_packing(
        co in 1usize..6,
        ci in 1usize..4,
        k in prop_oneof![Just(1usize), Just(3usize)],
        stride in 1usize..3,
        h in 3usize..8,
        batch in 1usize..4,
        wbits in bitwidth_strategy(),
        xbits in bitwidth_strategy(),
        zx in 0u8..6,
        per_channel in any::<bool>(),
        seed in 0u64..1000,
    ) {
        // The prepacked-panel path must reproduce the per-call-packing
        // blocked kernel bit for bit — output codes AND abstract ledger —
        // across shapes, strides, bit-widths, zero-points and batch sizes.
        let wshape = Shape::new(co, k, k, ci);
        let wcodes: Vec<u8> = (0..wshape.volume())
            .map(|i| ((i as u64 * 31 + seed * 7) % wbits.levels() as u64) as u8)
            .collect();
        let offset = if per_channel {
            WeightOffset::PerChannel((0..co).map(|c| (c as i16 % 5) - 2).collect())
        } else {
            WeightOffset::PerLayer(2)
        };
        let weights = QConvWeights::new(wshape, false, &wcodes, wbits, offset);
        let requant = Requantizer::icn(
            (0..co).map(|c| c as i32 - 1).collect(),
            (0..co)
                .map(|c| FixedPointMultiplier::from_real(0.01 + c as f64 * 0.005))
                .collect(),
            0,
            BitWidth::W8,
        );
        let conv = QConv2d::new(
            weights,
            ConvGeometry::new(k, k, stride, Padding::Same),
            requant,
        );
        let in_shape = Shape::feature_map(h, h, ci).with_batch(batch);
        let codes: Vec<u8> = (0..in_shape.volume())
            .map(|i| ((i as u64 * 13 + seed) % xbits.levels() as u64) as u8)
            .collect();
        let x = QActivation::from_codes(in_shape, &codes, xbits, zx.min(xbits.qmax() as u8));
        let mut o_uncached = OpCounts::default();
        let mut o_cached = OpCounts::default();
        let mut o_direct = OpCounts::default();
        let mut uncached = Vec::new();
        let mut cached = Vec::new();
        let shape_a = conv.execute_blocked_codes(&x, &mut uncached, &mut o_uncached);
        let panels = conv.prepack_panels();
        let shape_b = conv.execute_blocked_prepacked(
            &panels, &x, &mut Vec::new(), &mut cached, &mut o_cached);
        let direct = conv.execute(&x, &mut o_direct);
        prop_assert_eq!(shape_a, shape_b);
        prop_assert_eq!(&uncached, &cached);
        prop_assert_eq!(o_uncached, o_cached);
        prop_assert_eq!(direct.codes(), cached);
        // The artifact reports a non-trivial read-only footprint.
        prop_assert!(panels.bytes() >= wshape.volume());
        prop_assert_eq!(panels.k(), k * k * ci);
        prop_assert_eq!(panels.out_channels(), co);
    }

    #[test]
    fn batch_matches_single_sample_logits(
        depth in 1usize..4,
        ch in 1usize..5,
        h in 4usize..8,
        k in prop_oneof![Just(1usize), Just(3usize)],
        batch in 1usize..6,
        wbits in bitwidth_strategy(),
        abits in bitwidth_strategy(),
        with_skip in any::<bool>(),
        tiled in any::<bool>(),
        zx in 0u8..4,
        seed in 0u64..1000,
    ) {
        // A batch-N walk of a random residual DAG must be bit-identical to
        // N single-sample walks: logits, total ledger, and the planner's
        // batched Eq. 7 peak against the measured high-water mark.
        let input = Shape::feature_map(h, h, ch);
        let layer = |l: usize, out_bits: BitWidth| {
            let wshape = Shape::new(ch, k, k, ch);
            let wcodes: Vec<u8> = (0..wshape.volume())
                .map(|i| ((i as u64 * 31 + seed * 7 + l as u64) % wbits.levels() as u64) as u8)
                .collect();
            QConv2d::new(
                QConvWeights::new(wshape, false, &wcodes, wbits,
                                  WeightOffset::PerChannel((0..ch).map(|c| (c as i16 % 5) - 2).collect())),
                ConvGeometry::new(k, k, 1, Padding::Same),
                Requantizer::icn(
                    (0..ch).map(|c| c as i32 - 1).collect(),
                    (0..ch)
                        .map(|c| FixedPointMultiplier::from_real(0.02 + c as f64 * 0.004))
                        .collect(),
                    0,
                    out_bits,
                ),
            )
        };
        let head = QLinear::new(
            QConvWeights::new(
                Shape::new(3, 1, 1, ch),
                false,
                &(0..3 * ch).map(|i| ((i as u64 * 11 + seed) % 16) as u8).collect::<Vec<_>>(),
                BitWidth::W4,
                WeightOffset::PerLayer(2),
            ),
            vec![1, -2, 3],
            None,
        );
        let mut g = QGraph::with_input(input, BitWidth::W8);
        let mut id = 0usize;
        for l in 0..depth {
            id = g.push_node(
                format!("c{l}"),
                layer(l, if l + 1 == depth { BitWidth::W8 } else { abits }),
                &[id],
            );
        }
        if with_skip {
            // Identity residual join of the stack output with the input
            // (same grid at stride 1 / SAME padding).
            id = g.push_node(
                "res",
                mixq::kernels::QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, BitWidth::W8),
                &[id, 0],
            );
        }
        let _ = id;
        g.push("pool", mixq::kernels::QAvgPool);
        g.push("fc", head);
        if tiled {
            g.select_kernels(&TiledBackend::default());
        }

        // Per-sample codes, then the same samples stacked into one batch.
        let item = input.volume();
        let sample_codes = |s: usize| -> Vec<u8> {
            (0..item)
                .map(|i| (((s * item + i) as u64 * 13 + seed) % 200) as u8)
                .collect()
        };
        let mut stacked = Vec::with_capacity(batch * item);
        for s in 0..batch {
            stacked.extend(sample_codes(s));
        }
        let batched_shape = input.with_batch(batch);
        let xb = QActivation::from_codes(batched_shape, &stacked, BitWidth::W8, zx);
        let run_b = g.run(xb.clone());

        let mut single_logits = Vec::new();
        let mut single_ops = OpCounts::default();
        for s in 0..batch {
            let xs = QActivation::from_codes(input, &sample_codes(s), BitWidth::W8, zx);
            let r = g.run(xs);
            single_ops += r.total_ops();
            single_logits.extend(r.logits.expect("head-terminated"));
        }
        prop_assert_eq!(run_b.logits.as_deref(), Some(single_logits.as_slice()));
        prop_assert_eq!(run_b.total_ops(), single_ops);
        // The pooled batch path agrees with the ledger run, allocation
        // pooling aside.
        let mut arena = mixq::kernels::ActivationArena::new();
        let mut pooled_logits = Vec::new();
        let mut pooled_ops = OpCounts::default();
        g.infer_batch(xb, &mut arena, &mut pooled_logits, &mut pooled_ops);
        prop_assert_eq!(Some(pooled_logits), run_b.logits);
        prop_assert_eq!(pooled_ops, single_ops);
        // Planner and executor agree on the batched Eq. 7 peak.
        prop_assert_eq!(
            run_b.peak_live_bytes,
            g.peak_ram_bytes(batched_shape, BitWidth::W8)
        );
        // Per-layer ledgers divide back to one sample exactly.
        for lr in &run_b.layers {
            let mut acc = OpCounts::default();
            for _ in 0..batch {
                acc += lr.ops.per_sample(batch as u64);
            }
            prop_assert_eq!(acc, lr.ops);
        }
    }

    #[test]
    fn chain_and_dag_wiring_run_identically(
        depth in 1usize..4,
        ch in 1usize..4,
        h in 2usize..6,
        seed in 0u64..1000,
    ) {
        // A stack of pointwise convolutions built twice: once through the
        // chain `push`, once through explicit DAG input ids. The runs must
        // be bit-identical — ledger, logits-free output, measured peak —
        // and on a linear graph the liveness planner must degenerate to
        // the classic input+output pair walk.
        let layer = |l: usize| {
            let wshape = Shape::new(ch, 1, 1, ch);
            let wcodes: Vec<u8> = (0..wshape.volume())
                .map(|i| ((i as u64 * 17 + seed + l as u64 * 5) % 16) as u8)
                .collect();
            QConv2d::new(
                QConvWeights::new(wshape, false, &wcodes, BitWidth::W4,
                                  WeightOffset::PerLayer(1)),
                ConvGeometry::pointwise(),
                Requantizer::icn(
                    vec![0; ch],
                    (0..ch)
                        .map(|c| FixedPointMultiplier::from_real(0.05 + c as f64 * 0.01))
                        .collect(),
                    0,
                    BitWidth::W8,
                ),
            )
        };
        let mut chain = QGraph::new();
        let mut dag = QGraph::new();
        let mut id = 0usize;
        for l in 0..depth {
            chain.push(format!("c{l}"), layer(l));
            id = dag.push_node(format!("c{l}"), layer(l), &[id]);
        }
        let in_shape = Shape::feature_map(h, h, ch);
        let codes: Vec<u8> = (0..in_shape.volume())
            .map(|i| ((i as u64 * 7 + seed) % 256) as u8)
            .collect();
        let x = QActivation::from_codes(in_shape, &codes, BitWidth::W8, 1);
        let a = chain.run(x.clone());
        let b = dag.run(x);
        prop_assert_eq!(&a, &b);
        // Pointwise stack at W8: every tensor has the same byte size, so
        // the peak is exactly one input+output pair.
        let bytes = in_shape.volume();
        prop_assert_eq!(chain.peak_ram_bytes(in_shape, BitWidth::W8), 2 * bytes);
        prop_assert_eq!(a.peak_live_bytes, 2 * bytes);
    }

    #[test]
    fn histogram_percentile_is_monotone(
        values in proptest::collection::vec(-50.0f32..50.0, 1..200),
        p1 in 0.0f32..1.0,
        p2 in 0.0f32..1.0,
    ) {
        use mixq::quant::observer::HistogramObserver;
        let mut h = HistogramObserver::new(64);
        h.observe(&values);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(h.percentile_bound(lo) <= h.percentile_bound(hi) + 1e-6);
        // The full percentile covers the maximum magnitude.
        let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        prop_assert!(h.percentile_bound(1.0) >= max_abs * 0.95);
    }

    #[test]
    fn assignment_satisfies_constraints_on_random_networks(
        depth in 1usize..6,
        base_channels in 1usize..12,
        res in 8usize..40,
        ro_kb in 2usize..64,
        rw_kb in 1usize..64,
    ) {
        // Build a random-but-valid conv chain.
        let mut layers = Vec::new();
        let mut c = 1usize;
        let mut h = res;
        for i in 0..depth {
            let out = base_channels * (i + 1);
            layers.push(LayerSpec::conv(&format!("c{i}"), 3, if i % 2 == 1 { 2 } else { 1 }, c, out, h, h));
            h = h.div_ceil(if i % 2 == 1 { 2 } else { 1 });
            c = out;
        }
        layers.push(LayerSpec::linear("fc", c, 10));
        let spec = NetworkSpec::new("rand", Shape::feature_map(res, res, 1), layers);
        let cfg = MixedPrecisionConfig::new(
            MemoryBudget::new(ro_kb * 1024, rw_kb * 1024),
            QuantScheme::PerChannelIcn,
        );
        match assign_bits(&spec, &cfg) {
            Ok(a) => {
                // The invariant: a returned assignment always satisfies
                // both constraints and never dips below the minimums.
                prop_assert!(a.satisfies(&spec, &cfg));
                prop_assert!(a.act_bits.iter().all(|&b| b >= cfg.qa_min));
                prop_assert!(a.weight_bits.iter().all(|&b| b >= cfg.qw_min));
                // Input and logits stay at 8 bits.
                prop_assert_eq!(a.act_bits[0], BitWidth::W8);
                prop_assert_eq!(*a.act_bits.last().unwrap(), BitWidth::W8);
            }
            Err(mixq::core::MixQError::InfeasibleActivations { layer, pair_bytes, budget }) => {
                // Algorithm 1 is a greedy heuristic (the paper's CutBits
                // rule never cuts a tensor below its partner's precision),
                // so it may stop above the true minimum. The guarantee is
                // internal consistency: the reported violation is real.
                prop_assert!(pair_bytes > budget);
                // `layer` is a schedule-step index: one step per conv
                // layer, plus the explicit pool and classifier steps.
                prop_assert!(layer <= spec.num_layers());
                prop_assert_eq!(budget, cfg.budget.rw_bytes);
            }
            Err(mixq::core::MixQError::InfeasibleWeights { total_bytes, budget }) => {
                // Algorithm 2 *is* complete (it can drive every layer to
                // the minimum), so weight infeasibility must be absolute.
                prop_assert!(total_bytes > budget);
                let l = spec.num_layers();
                let min_assign = mixq::core::mixed::BitAssignment {
                    act_bits: {
                        let mut a = vec![cfg.qa_min; l + 1];
                        a[0] = BitWidth::W8;
                        a[l] = BitWidth::W8;
                        a
                    },
                    weight_bits: vec![cfg.qw_min; l],
                    res_bits: Vec::new(),
                };
                prop_assert!(
                    min_assign.flash_bytes(&spec, cfg.scheme) > cfg.budget.ro_bytes,
                    "claimed weight-infeasible but minimum weights fit"
                );
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    #[test]
    fn residual_dag_peak_matches_executor_planner(
        res in prop_oneof![Just(6usize), Just(8), Just(10)],
        input_c in 1usize..3,
        stem_c in prop_oneof![Just(4usize), Just(6), Just(8)],
        // Per candidate block, two bits: does the stride-1 pair carry an
        // identity skip (bit 0), and does it squeeze its hidden channels
        // (bit 1)?
        pattern in proptest::collection::vec(0usize..4, 1..4),
        cut_pattern in proptest::collection::vec(0usize..3, 0..24),
    ) {
        // Build a random residual DAG: a stem conv, then for each pattern
        // entry a (squeeze?) bottleneck pair, optionally skipped.
        let mut layers = vec![LayerSpec::conv("stem", 3, 1, input_c, stem_c, res, res)];
        let mut spec_skips = Vec::new();
        for (i, &bits) in pattern.iter().enumerate() {
            let (skip, squeeze) = (bits & 1 == 1, bits & 2 == 2);
            let hidden = if squeeze { stem_c.div_ceil(2) } else { stem_c };
            let from = layers.len() - 1;
            layers.push(LayerSpec::conv(&format!("b{i}a"), 1, 1, stem_c, hidden, res, res));
            layers.push(LayerSpec::conv(&format!("b{i}b"), 3, 1, hidden, stem_c, res, res));
            if skip {
                spec_skips.push((from, layers.len() - 1));
            }
        }
        layers.push(LayerSpec::linear("fc", stem_c, 3));
        let mut spec = NetworkSpec::new("rand-dag", Shape::feature_map(res, res, input_c), layers);
        for (from, to) in spec_skips {
            spec = spec.with_skip(from, to);
        }

        // Under uniform 8 bits the spec-level liveness peak equals the
        // executor planner's `peak_ram_bytes` of the lowered graph...
        let mut assignment = mixq::core::mixed::BitAssignment::uniform8(&spec);
        let peak8 = assignment.peak_rw_bytes(&spec);
        prop_assert_eq!(peak8, common::lowered_peak_ram(&spec, &assignment));

        // ...and under an arbitrary cut assignment the two still agree,
        // while the uniform-8 peak stays an upper bound.
        let widths = [BitWidth::W8, BitWidth::W4, BitWidth::W2];
        for (j, &w) in cut_pattern.iter().enumerate() {
            let acts = assignment.act_bits.len();
            if j % 2 == 0 && acts > 2 {
                // Interior activations only: input and logits stay 8-bit.
                assignment.act_bits[1 + j % (acts - 2)] = widths[w];
            } else if !assignment.res_bits.is_empty() {
                let s = j % assignment.res_bits.len();
                assignment.res_bits[s] = widths[w];
            }
        }
        let peak_cut = assignment.peak_rw_bytes(&spec);
        prop_assert_eq!(peak_cut, common::lowered_peak_ram(&spec, &assignment));
        prop_assert!(peak_cut <= peak8, "cuts can only shrink the live set");
    }

    #[test]
    fn simd_matches_scalar_bit_identical(
        depth in 1usize..4,
        ch in 1usize..6,
        h in 4usize..8,
        k in prop_oneof![Just(1usize), Just(3usize)],
        batch in 1usize..5,
        wbits in bitwidth_strategy(),
        abits in bitwidth_strategy(),
        with_skip in any::<bool>(),
        zx in 0u8..4,
        seed in 0u64..1000,
    ) {
        // Every vector backend the host can run must reproduce the forced-
        // scalar walk bit-exactly: logits AND the abstract ledger (the
        // dataflow may change, the modeled work may not). The graph is
        // lowered through the tiled backend so the blocked-GEMM/`gemv2`
        // path — the only level-dependent kernel — is actually on the
        // execution path.
        use mixq::kernels::simd;
        let (g, xb) = random_residual_dag(depth, ch, h, k, batch, wbits, abits,
                                          with_skip, true, zx, seed);
        simd::set_forced(Some(SimdLevel::Scalar));
        let scalar = g.run(xb.clone());
        for level in [SimdLevel::Sse2, SimdLevel::Avx2, SimdLevel::Neon] {
            if !level.available() {
                continue;
            }
            simd::set_forced(Some(level));
            let vec_run = g.run(xb.clone());
            simd::set_forced(None);
            prop_assert_eq!(&vec_run.logits, &scalar.logits,
                            "{:?} logits diverge from scalar", level);
            prop_assert_eq!(vec_run.total_ops(), scalar.total_ops(),
                            "{:?} ledger diverges from scalar", level);
        }
        // Auto-detection picks one of the levels just proven identical.
        simd::set_forced(None);
        let auto = g.run(xb);
        prop_assert_eq!(auto.logits, scalar.logits);
        prop_assert_eq!(auto.total_ops(), scalar.total_ops());
    }

    #[test]
    fn threaded_walk_matches_serial_bit_identical(
        depth in 1usize..4,
        ch in 1usize..6,
        h in 4usize..8,
        k in prop_oneof![Just(1usize), Just(3usize)],
        batch in 1usize..5,
        wbits in bitwidth_strategy(),
        abits in bitwidth_strategy(),
        with_skip in any::<bool>(),
        tiled in any::<bool>(),
        threads in 2usize..5,
        zx in 0u8..4,
        seed in 0u64..1000,
    ) {
        // An intra-walk worker pool splits row blocks of each blocked GEMM
        // across threads; the merged result — logits and ledger — must be
        // bit-identical to the serial pooled walk of the same graph.
        use std::sync::Arc;
        use mixq::kernels::{ActivationArena, ThreadPool};
        let (g, xb) = random_residual_dag(depth, ch, h, k, batch, wbits, abits,
                                          with_skip, tiled, zx, seed);
        let mut serial_arena = ActivationArena::new();
        let mut serial_logits = Vec::new();
        let mut serial_ops = OpCounts::default();
        g.infer_batch(xb.clone(), &mut serial_arena, &mut serial_logits, &mut serial_ops);

        let mut pooled_arena = ActivationArena::new();
        pooled_arena.set_pool(Arc::new(ThreadPool::new(threads)));
        let mut pooled_logits = Vec::new();
        let mut pooled_ops = OpCounts::default();
        g.infer_batch(xb, &mut pooled_arena, &mut pooled_logits, &mut pooled_ops);

        prop_assert_eq!(pooled_logits, serial_logits);
        prop_assert_eq!(pooled_ops, serial_ops);
    }

    #[test]
    fn vectorized_requant_is_bit_identical(
        co in 1usize..40,
        kind in 0usize..3, // 0 = ICN, 1 = folded per-layer, 2 = thresholds
        out_bits in bitwidth_strategy(),
        zy in -8i32..8,
        saturate in any::<bool>(),
        mults in proptest::collection::vec(-4.0f64..4.0, 40),
        bqs in proptest::collection::vec(-5000i64..5000, 40),
        phis in proptest::collection::vec(-1_000_000i64..1_000_000, 1..80),
        c0 in 0usize..8,
    ) {
        // The vectorized requantization epilogue must reproduce the scalar
        // `Requantizer::apply` loop bit-exactly — codes AND the abstract
        // `requants`/`threshold_cmps` ledger — at every SIMD level the
        // host can run, across random multipliers (including negative and
        // near-zero), zero-points, output bit-widths, threshold channels
        // of both orientations, and the saturated-i16 ablation rewrite.
        use mixq::kernels::simd::requant::{self as vreq, RequantPlan};
        let req = match kind {
            0 => Requantizer::icn(
                bqs[..co].iter().map(|&b| b as i32).collect(),
                mults[..co].iter().map(|&m| FixedPointMultiplier::from_real(m)).collect(),
                zy, out_bits),
            1 => Requantizer::folded(
                bqs[..co].iter().map(|&b| b as i32).collect(),
                FixedPointMultiplier::from_real(mults[0]),
                zy, out_bits),
            _ => {
                // `from_affine` needs m > 0; fold the sign into a transfer
                // instead so negative slopes exercise descending tables.
                let channels = (0..co).map(|c| {
                    let m = mults[c];
                    if m.abs() < 1e-3 {
                        ThresholdChannel::from_affine(0.5, bqs[c], zy, out_bits)
                    } else if m > 0.0 {
                        ThresholdChannel::from_affine(m, bqs[c], zy, out_bits)
                    } else {
                        ThresholdChannel::from_transfer(m, bqs[c] as f64, zy, out_bits)
                    }
                }).collect();
                let t = Requantizer::thresholds(channels, zy, out_bits);
                if saturate { t.saturated_i16() } else { t }
            }
        };
        let plan = RequantPlan::new(&req);
        let c0 = c0.min(co - 1);
        let n = (co - c0).min(phis.len());

        // Reference: the plain scalar loop over `Requantizer::apply`.
        let mut out_ref = vec![0u8; n];
        let (mut rq_ref, mut tc_ref) = (0u64, 0u64);
        for (j, &phi) in phis[..n].iter().enumerate() {
            out_ref[j] = req.apply(c0 + j, phi, &mut rq_ref, &mut tc_ref);
        }

        for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2,
                      SimdLevel::Neon] {
            if !level.available() {
                continue;
            }
            let mut out = vec![0u8; n];
            let (mut rq, mut tc) = (0u64, 0u64);
            vreq::apply_phi_block(&plan, &req, level, c0, &phis[..n],
                                  &mut out, &mut rq, &mut tc);
            prop_assert_eq!(&out, &out_ref, "{:?} codes diverge", level);
            prop_assert_eq!((rq, tc), (rq_ref, tc_ref),
                            "{:?} ledger diverges", level);

            // The i32-accumulator entry (fused GEMM/depthwise epilogue)
            // must agree wherever the accumulators fit in i32.
            if phis[..n].iter().all(|&p| i32::try_from(p).is_ok()) {
                let accs: Vec<i32> = phis[..n].iter().map(|&p| p as i32).collect();
                let mut out32 = vec![0u8; n];
                let (mut rq32, mut tc32) = (0u64, 0u64);
                vreq::apply_i32_block(&plan, &req, level, c0, &accs,
                                      &mut out32, &mut rq32, &mut tc32);
                prop_assert_eq!(&out32, &out_ref, "{:?} i32 codes diverge", level);
                prop_assert_eq!((rq32, tc32), (rq_ref, tc_ref),
                                "{:?} i32 ledger diverges", level);
            }
        }
    }

    #[test]
    fn flash_footprint_monotone_in_precision(
        co in 1usize..64,
        ci in 1usize..64,
        k in prop_oneof![Just(1usize), Just(3usize)],
    ) {
        let layer = LayerSpec::conv("l", k, 1, ci, co, 16, 16);
        let mut last = 0usize;
        for bits in [BitWidth::W2, BitWidth::W4, BitWidth::W8] {
            let b = mixq::core::memory::layer_flash_footprint(
                &layer, QuantScheme::PerChannelIcn, bits, BitWidth::W8);
            prop_assert!(b >= last);
            last = b;
        }
    }
}
