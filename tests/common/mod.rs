//! Shared helpers for the integration tests: lowering a shape-level
//! [`NetworkSpec`] onto a real executor [`QGraph`] with dummy (all-zero)
//! weights, so planner-vs-assignment agreement can be checked without
//! training a network.

// Each test binary compiles its own copy; not all of them use every helper.
#![allow(dead_code)]

use mixq::core::mixed::BitAssignment;
use mixq::kernels::{
    QAdd, QAvgPool, QConv2d, QConvWeights, QGraph, QLinear, Requantizer, WeightOffset,
};
use mixq::models::{LayerKind, NetworkSpec};
use mixq::quant::{BitWidth, FixedPointMultiplier};
use mixq::tensor::{ConvGeometry, Padding, Shape};

fn identity_requant(channels: usize, bits: BitWidth) -> Requantizer {
    Requantizer::icn(
        vec![0; channels],
        vec![FixedPointMultiplier::from_real(1.0); channels],
        0,
        bits,
    )
}

/// Lowers `spec` onto an executable [`QGraph`] with zeroed weights, wiring
/// conv, residual-add, pool and classifier nodes exactly as
/// `mixq::core::convert` does for a trained network, with every tensor at
/// the precision `assignment` gives it. The result is shape-faithful: its
/// `peak_ram_bytes` is the executor's verdict on the assignment.
pub fn lower_shape_graph(spec: &NetworkSpec, assignment: &BitAssignment) -> QGraph {
    let mut graph = QGraph::new();
    let mut cur = 0usize;
    let mut out_ids = Vec::with_capacity(spec.num_layers());
    for (i, layer) in spec.layers().iter().enumerate() {
        match layer.kind() {
            LayerKind::Linear => {
                graph.push("pool", QAvgPool);
                let w = QConvWeights::new(
                    Shape::new(layer.out_channels(), 1, 1, layer.in_channels()),
                    false,
                    &vec![0; layer.weight_elements()],
                    BitWidth::W4,
                    WeightOffset::PerLayer(0),
                );
                cur = graph.push("fc", QLinear::new(w, vec![0; layer.out_channels()], None));
            }
            kind => {
                let depthwise = kind == LayerKind::DepthwiseConv;
                let shape = if depthwise {
                    Shape::new(layer.out_channels(), layer.kernel(), layer.kernel(), 1)
                } else {
                    Shape::new(
                        layer.out_channels(),
                        layer.kernel(),
                        layer.kernel(),
                        layer.in_channels(),
                    )
                };
                let offset = if depthwise {
                    WeightOffset::PerChannel(vec![0; layer.out_channels()])
                } else {
                    WeightOffset::PerLayer(0)
                };
                let w = QConvWeights::new(
                    shape,
                    depthwise,
                    &vec![0; layer.weight_elements()],
                    BitWidth::W4,
                    offset,
                );
                let conv = QConv2d::new(
                    w,
                    ConvGeometry::new(
                        layer.kernel(),
                        layer.kernel(),
                        layer.stride(),
                        Padding::Same,
                    ),
                    identity_requant(layer.out_channels(), assignment.act_bits[i + 1]),
                );
                cur = graph.push_node(layer.name().to_owned(), conv, &[cur]);
                if let Some(s) = spec.skip_ending_at(i) {
                    let add = QAdd::from_scales(1.0, 1.0, 1.0, 0, 0, 0, assignment.res_bits[s]);
                    let skip_src = out_ids[spec.skips()[s].from()];
                    cur = graph.push_node(format!("add{i}"), add, &[cur, skip_src]);
                }
            }
        }
        out_ids.push(cur);
    }
    graph
}

/// The executor's peak-RAM verdict on `assignment`: the liveness-planned
/// high-water mark of the lowered graph (8-bit network input, as always).
pub fn lowered_peak_ram(spec: &NetworkSpec, assignment: &BitAssignment) -> usize {
    let input = spec.input();
    lower_shape_graph(spec, assignment).peak_ram_bytes(input, BitWidth::W8)
}

/// The chain-era pairwise Eq. 7 model (largest input+output pair), kept
/// here as the baseline the DAG-aware model is compared against: it is
/// blind to the skip tensor's extended live range.
pub fn pairwise_peak_bytes(spec: &NetworkSpec, assignment: &BitAssignment) -> usize {
    spec.layers()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            assignment.act_bits[i].bytes_for(l.in_act_elements())
                + assignment.act_bits[i + 1].bytes_for(l.out_act_elements())
        })
        .max()
        .unwrap_or(0)
}
