//! Static-verification integration: every lowered micro-model graph must
//! verify on both backends under every scheme, the verifier's tight Φ
//! intervals must be achieved by concrete adversarial inputs evaluated
//! through the real folded-accumulator formula, and the deploy pipeline
//! must refuse nothing that converts honestly.

use mixq::core::convert::convert_with_backend;
use mixq::core::memory::QuantScheme;
use mixq::data::{DatasetSpec, SyntheticKind};
use mixq::kernels::backend::{Backend, ReferenceBackend, TiledBackend};
use mixq::kernels::AnyOp;
use mixq::models::micro::{folding_stress_cnn, mobilenet_like_residual, quickstart_cnn};
use mixq::nn::qat::{MicroCnnSpec, QatNetwork};
use mixq::quant::Granularity;
use mixq::verify::{conv_phi_intervals, verify_graph, Interval};

fn calibrated(spec: &MicroCnnSpec, seed: u64) -> QatNetwork {
    let input = spec.input_shape();
    let ds = DatasetSpec::new(SyntheticKind::Bars, input.h, input.w, input.c, 4)
        .with_samples(8)
        .with_noise(0.05)
        .generate(seed);
    let mut net = QatNetwork::build(spec, seed);
    net.calibrate_input(ds.images());
    net.enable_fake_quant(Granularity::PerChannel);
    net
}

#[test]
fn zoo_graphs_verify_on_both_backends() {
    let backends: [(&dyn Backend, &str); 2] = [
        (&ReferenceBackend, "ref"),
        (&TiledBackend::default(), "tiled"),
    ];
    let models: [(&str, MicroCnnSpec); 3] = [
        ("residual", mobilenet_like_residual(16, 2, 8, 4)),
        ("quickstart", quickstart_cnn(4)),
        ("folding", folding_stress_cnn(2, 4)),
    ];
    for (model, spec) in &models {
        let net = calibrated(spec, 77);
        for scheme in QuantScheme::ALL {
            for (backend, btag) in backends {
                let int = convert_with_backend(&net, scheme, backend).expect("converts");
                let g = int.graph();
                let (shape, bits) = g.input_decl().expect("declared input");
                let report = verify_graph(&format!("{model}/{btag}"), g, shape, bits);
                assert!(report.ok(), "{}", report.render());
                assert_eq!(report.nodes.len(), g.len());
                assert_eq!(report.peak_ram_bytes, g.peak_ram_bytes(shape, bits));
            }
        }
    }
}

/// Evaluates the folded accumulator `Φ_c(X, Zx) = Σ_i x_i(w_i − Zw_c) −
/// Zx·base_c` for one concrete input vector — the formula the fused
/// kernels compute, written independently of the verifier's interval
/// transfer functions.
fn concrete_phi(row: &[u8], zw: i64, x: &[i64], zx: i64) -> i128 {
    let base: i64 = row.iter().map(|&c| c as i64 - zw).sum();
    let dot: i128 = row
        .iter()
        .zip(x)
        .map(|(&c, &xi)| xi as i128 * (c as i64 - zw) as i128)
        .sum();
    dot - zx as i128 * base as i128
}

#[test]
fn phi_intervals_are_tight_and_sound() {
    let net = calibrated(&mobilenet_like_residual(16, 2, 8, 4), 77);
    let int = convert_with_backend(&net, QuantScheme::PerChannelIcn, &TiledBackend::default())
        .expect("converts");
    let g = int.graph();
    let (shape, in_bits) = g.input_decl().expect("declared input");
    let (_, bits) = g.tensor_plan(shape, in_bits);

    let mut convs_checked = 0;
    for node in g.nodes() {
        let AnyOp::Conv(conv) = node.op() else {
            continue;
        };
        let node_in_bits = bits[node.inputs()[0]];
        let qx = node_in_bits.qmax() as i64;
        let zx_iv = Interval::new(0, qx as i128);
        let phis = conv_phi_intervals(conv, node_in_bits, zx_iv);

        let w = conv.weights();
        let taps =
            conv.geometry().kernel_area() * if w.is_depthwise() { 1 } else { w.in_channels() };
        let codes = w.codes();
        for (co, iv) in phis.iter().enumerate() {
            let row = &codes[co * taps..(co + 1) * taps];
            let zw = w.offset().at(co) as i64;
            let base: i64 = row.iter().map(|&c| c as i64 - zw).sum();

            // Tightness: the adversarial corner input (x_i = qx exactly
            // where w_i > Zw, zero-point at the worst endpoint) achieves
            // the interval's upper bound; the mirrored input achieves the
            // lower bound.
            let x_hi: Vec<i64> = row
                .iter()
                .map(|&c| if (c as i64) > zw { qx } else { 0 })
                .collect();
            let zx_hi = if base < 0 { qx } else { 0 };
            assert_eq!(
                concrete_phi(row, zw, &x_hi, zx_hi),
                iv.hi(),
                "Φ upper bound not achieved: {} channel {co}",
                node.name()
            );
            let x_lo: Vec<i64> = row
                .iter()
                .map(|&c| if (c as i64) < zw { qx } else { 0 })
                .collect();
            let zx_lo = if base > 0 { qx } else { 0 };
            assert_eq!(
                concrete_phi(row, zw, &x_lo, zx_lo),
                iv.lo(),
                "Φ lower bound not achieved: {} channel {co}",
                node.name()
            );

            // Soundness: deterministic pseudo-random inputs stay inside.
            let mut state = 0x9e37_79b9_u64.wrapping_add(co as u64);
            for _ in 0..20 {
                let x: Vec<i64> = (0..taps)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 33) as i64 % (qx + 1)
                    })
                    .collect();
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let zx = (state >> 33) as i64 % (qx + 1);
                assert!(
                    iv.contains(concrete_phi(row, zw, &x, zx)),
                    "Φ escaped its interval: {} channel {co}",
                    node.name()
                );
            }
        }
        convs_checked += 1;
    }
    assert!(convs_checked >= 10, "expected a deep conv stack");
}
