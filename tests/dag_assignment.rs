//! DAG-aware memory-driven bit assignment (Algorithms 1–2 over residual
//! graphs): the §5 procedure now prices the executor's liveness schedule,
//! so assignment-approved residual networks always fit the deployed
//! graph's measured peak RAM, a deliberately tight `M_RW` cuts the skip
//! tensor the chain-era pairwise model could not even see, and the
//! assignment lowers end to end (QAT residual activations take their
//! assigned widths, `QAdd` joins carry them).

mod common;

use common::{lowered_peak_ram, pairwise_peak_bytes};

use mixq::core::convert::{convert, scheme_granularity};
use mixq::core::memory::{peak_live_bytes, MemoryBudget, QuantScheme, RESIDUAL_ADD_PARAM_BYTES};
use mixq::core::mixed::{assign_bits, BitAssignment, MixedPrecisionConfig};
use mixq::kernels::AnyOp;
use mixq::models::micro::{mobilenet_like_residual, network_spec_of};
use mixq::models::{LayerSpec, NetworkSpec, SpecOp, TensorSource};
use mixq::nn::qat::QatNetwork;
use mixq::quant::BitWidth;
use mixq::tensor::{Shape, Tensor};

/// A bottleneck whose skip tensor is the widest thing alive mid-branch:
/// the branch squeezes channels 8 → 4 → 8 while the skip holds the full
/// 8-channel tensor across it.
fn squeeze_skip_spec() -> NetworkSpec {
    NetworkSpec::new(
        "squeeze-skip",
        Shape::feature_map(8, 8, 2),
        vec![
            LayerSpec::conv("a", 3, 1, 2, 8, 8, 8),
            LayerSpec::conv("b", 1, 1, 8, 4, 8, 8),
            LayerSpec::conv("c", 1, 1, 4, 8, 8, 8),
            LayerSpec::linear("fc", 8, 3),
        ],
    )
    .with_skip(0, 2)
}

fn residual_mobilenet_spec() -> NetworkSpec {
    // Width /4 keeps the binding step's output at least as large as its
    // input, so Algorithm 1 has room to cut below the uniform-8 peak (the
    // network input itself is never cut).
    let spec = mobilenet_like_residual(32, 2, 4, 3);
    let net = QatNetwork::build(&spec, 7);
    network_spec_of(&net, "mobilenet-residual")
}

#[test]
fn spec_schedule_mirrors_graph_wiring() {
    let spec = squeeze_skip_spec();
    assert_eq!(spec.num_skips(), 1);
    assert_eq!(spec.skip_ending_at(2), Some(0));
    let g = spec.graph();
    // a, b, c, add, pool, fc = 6 steps; input + 6 outputs = 7 tensors.
    assert_eq!(g.steps().len(), 6);
    assert_eq!(g.tensors().len(), 7);
    assert_eq!(g.steps()[3].op, SpecOp::ResidualAdd(0));
    // The add consumes c's output and the skip source (a's output).
    assert_eq!(g.steps()[3].inputs, vec![3, 1]);
    assert_eq!(g.steps()[4].op, SpecOp::AvgPool);
    assert_eq!(g.tensors()[4].source, TensorSource::Residual(0));
    assert_eq!(g.tensors()[6].source, TensorSource::Logits);
    // The skip source stays alive from its definition to the add step.
    assert_eq!(g.last_uses()[1], 3);
    // Layer b's consumer chain ends at c.
    assert_eq!(g.last_uses()[2], 2);
}

#[test]
fn assignment_peak_matches_lowered_planner_on_mobilenet_residual() {
    // The acceptance bar: on `mobilenet_like_residual`, the assignment's
    // predicted peak equals `QGraph::peak_ram_bytes` of the lowered
    // network — at uniform 8 bits and after budget-forced cuts alike.
    let spec = residual_mobilenet_spec();
    assert_eq!(spec.num_skips(), 8, "width/4 variant declares 8 skips");
    let uniform = BitAssignment::uniform8(&spec);
    let peak8 = uniform.peak_rw_bytes(&spec);
    assert_eq!(peak8, lowered_peak_ram(&spec, &uniform));

    // Budgets down to the fixed 8-bit input's floor (the network input is
    // never cut, so the binding step cannot shrink below input + Q_a,min).
    let mut forced_cuts = false;
    for rw in [peak8, peak8 * 7 / 8, peak8 * 3 / 4] {
        let cfg = MixedPrecisionConfig::new(
            MemoryBudget::new(usize::MAX, rw),
            QuantScheme::PerChannelIcn,
        );
        let a = assign_bits(&spec, &cfg).expect("feasible");
        forced_cuts |= a.has_cuts();
        assert!(a.satisfies(&spec, &cfg));
        assert_eq!(
            a.peak_rw_bytes(&spec),
            lowered_peak_ram(&spec, &a),
            "assignment and executor disagree at RW {rw}: {a}"
        );
    }
    assert!(forced_cuts, "the tighter budgets must force cuts");
}

#[test]
fn tight_rw_cuts_the_skip_tensor_the_chain_model_missed() {
    let spec = squeeze_skip_spec();
    let uniform = BitAssignment::uniform8(&spec);
    // Tensor bytes at 8 bits: a_out 512 (the skip), b_out 256, c_out 512,
    // add_out 512. The chain-era pairwise model tops out at b's pair
    // (512 + 256 = 768); the true live set peaks at the add step
    // (a_out + c_out + add_out = 1536).
    assert_eq!(pairwise_peak_bytes(&spec, &uniform), 768);
    assert_eq!(uniform.peak_rw_bytes(&spec), 1536);

    // A budget the pairwise model accepts at uniform 8 bits...
    let budget = MemoryBudget::new(usize::MAX, 768);
    assert!(pairwise_peak_bytes(&spec, &uniform) <= budget.rw_bytes);
    // ...which the executor would reject outright.
    assert!(uniform.peak_rw_bytes(&spec) > budget.rw_bytes);

    // The DAG-aware assignment sees the violation and resolves it by
    // cutting the skip-source tensor (and the branch tensors around it).
    let cfg = MixedPrecisionConfig::new(budget, QuantScheme::PerChannelIcn);
    let a = assign_bits(&spec, &cfg).expect("feasible");
    assert_eq!(
        a.act_bits[1],
        BitWidth::W4,
        "the pending skip tensor must be cut: {a}"
    );
    assert!(a.res_bits[0] < BitWidth::W8, "residual output cut: {a}");
    assert!(a.satisfies(&spec, &cfg));
    assert_eq!(a.peak_rw_bytes(&spec), lowered_peak_ram(&spec, &a));
    assert!(a.peak_rw_bytes(&spec) <= budget.rw_bytes);
}

#[test]
fn assignment_lowers_through_qat_onto_qadd_nodes() {
    // End-to-end threading: assignment → QAT residual activation widths →
    // converted `QAdd` output precisions → executor peak equals the
    // spec-level prediction on the real deployment graph. The trainable
    // twin of `squeeze_skip_spec`, under the budget that cuts its skip.
    use mixq::nn::qat::{BlockSpec, MicroCnnSpec};
    use mixq::nn::ConvKind;
    let block = |out, kernel| BlockSpec {
        out_channels: out,
        stride: 1,
        kind: ConvKind::Standard,
        kernel,
    };
    let spec = MicroCnnSpec::new(8, 8, 2, 3, &[8])
        .with_blocks(vec![block(8, 3), block(4, 1), block(8, 1)])
        .with_residual(0, 2);
    let mut net = QatNetwork::build(&spec, 11);
    let net_spec = network_spec_of(&net, "lowering");
    let twin = squeeze_skip_spec();
    assert_eq!(net_spec.skips(), twin.skips());
    assert_eq!(net_spec.num_layers(), twin.num_layers());
    let cfg = MixedPrecisionConfig::new(
        MemoryBudget::new(usize::MAX, 768),
        QuantScheme::PerChannelIcn,
    );
    let a = assign_bits(&net_spec, &cfg).expect("feasible");
    assert!(a.has_cuts(), "budget must force cuts");
    assert!(
        a.res_bits[0] < BitWidth::W8,
        "the residual width must be cut: {a}"
    );

    net.calibrate_input(&Tensor::full(net.input_shape(), 1.0));
    net.enable_fake_quant(scheme_granularity(QuantScheme::PerChannelIcn));
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, a.weight_bits[i]);
        net.set_act_bits(i, a.act_bits[i + 1]);
    }
    for (r, &b) in a.res_bits.iter().enumerate() {
        net.set_residual_act_bits(r, b);
    }
    net.set_linear_weight_bits(a.weight_bits[net.num_blocks()]);
    let int_net = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");

    // Every QAdd node carries its assigned residual width.
    let add_bits: Vec<BitWidth> = int_net
        .graph()
        .nodes()
        .iter()
        .filter_map(|n| match n.op() {
            AnyOp::Add(add) => Some(add.out_bits()),
            _ => None,
        })
        .collect();
    assert_eq!(add_bits, a.res_bits);
    assert_eq!(
        int_net.peak_ram_bytes(),
        a.peak_rw_bytes(&net_spec),
        "deployed graph and assignment must price the same live sets"
    );
}

#[test]
fn chain_specs_degenerate_to_the_pair_model() {
    // On a skip-free spec the liveness peak is the classic binding pair
    // wherever a conv pair binds (the explicit pool step can only matter
    // on nets whose channel count exceeds the final feature map).
    let spec = residual_mobilenet_spec();
    let chain = NetworkSpec::new("chain-twin", spec.input(), spec.layers().to_vec());
    let uniform = BitAssignment::uniform8(&chain);
    assert_eq!(
        uniform.peak_rw_bytes(&chain),
        pairwise_peak_bytes(&chain, &uniform)
    );
    assert_eq!(
        uniform.peak_rw_bytes(&chain),
        lowered_peak_ram(&chain, &uniform)
    );
    // Skips can only add live bytes, never remove them (here the binding
    // step is the stem pair, outside every skip region, so they tie; the
    // squeeze spec above shows the strict case).
    let residual8 = BitAssignment::uniform8(&spec);
    assert!(residual8.peak_rw_bytes(&spec) >= uniform.peak_rw_bytes(&chain));
}

#[test]
fn weight_cuts_price_the_residual_add_parameters() {
    // Regression: with M_RO inside the add-parameter band (layer
    // footprints fit, layers + add blocks do not), Algorithm 2 must keep
    // cutting — an approved assignment always satisfies its own check.
    let spec = squeeze_skip_spec();
    let uniform = BitAssignment::uniform8(&spec);
    let flash8 = uniform.flash_bytes(&spec, QuantScheme::PerChannelIcn);
    let layers_only = flash8 - spec.num_skips() * RESIDUAL_ADD_PARAM_BYTES;
    let cfg = MixedPrecisionConfig::new(
        MemoryBudget::new(layers_only, usize::MAX),
        QuantScheme::PerChannelIcn,
    );
    let a = assign_bits(&spec, &cfg).expect("feasible");
    assert!(
        a.weight_bits.iter().any(|&b| b < BitWidth::W8),
        "the add blocks must force a weight cut: {a}"
    );
    assert!(a.satisfies(&spec, &cfg));
}

#[test]
fn residual_flash_model_matches_converted_network() {
    // Eq. 6 side of the dedupe: the spec-level flash model (which now
    // prices one parameter block per residual add) equals the converted
    // network's actual bytes, so `satisfies` and `fits_budget` cannot
    // disagree on either constraint.
    let spec = mobilenet_like_residual(16, 2, 8, 3);
    let mut net = QatNetwork::build(&spec, 13);
    net.calibrate_input(&Tensor::full(net.input_shape(), 1.0));
    net.enable_fake_quant(scheme_granularity(QuantScheme::PerChannelIcn));
    let int_net = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
    let net_spec = network_spec_of(&net, "flash-twin");
    let uniform = BitAssignment::uniform8(&net_spec);
    assert_eq!(
        int_net.flash_bytes(),
        uniform.flash_bytes(&net_spec, QuantScheme::PerChannelIcn)
    );
    assert_eq!(
        int_net.peak_ram_bytes(),
        peak_live_bytes(&net_spec, &uniform.act_bits, &uniform.res_bits)
    );
}
