//! Consistency tests across the deployment stack: the *actual* converted
//! network (packed tensors, requant parameters) must agree with the
//! shape-level Table-1 memory model and with the alternative GEMM kernel
//! dataflow, and the exported C header must account for the same bytes.

use mixq::core::convert::{convert, scheme_granularity, IntNetwork};
use mixq::core::export::emit_c_header;
use mixq::core::memory::{network_flash_footprint_with_acts, peak_activation_bytes, QuantScheme};
use mixq::data::{Dataset, DatasetSpec, SyntheticKind};
use mixq::kernels::OpCounts;
use mixq::models::micro::network_spec_of;
use mixq::nn::qat::{MicroCnnSpec, QatNetwork};
use mixq::nn::train::{train, TrainConfig};
use mixq::quant::BitWidth;

fn dataset() -> Dataset {
    DatasetSpec::new(SyntheticKind::Bars, 8, 8, 2, 3)
        .with_samples(96)
        .with_noise(0.05)
        .generate(17)
}

fn trained(scheme: QuantScheme, bits: BitWidth) -> (QatNetwork, IntNetwork, Dataset) {
    let ds = dataset();
    let spec = MicroCnnSpec::new(8, 8, 2, 3, &[6, 8]);
    let mut net = QatNetwork::build(&spec, 23);
    let _ = train(&mut net, &ds, &TrainConfig::fast(4));
    net.calibrate_input(ds.images());
    net.enable_fake_quant(scheme_granularity(scheme));
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, bits);
    }
    net.set_linear_weight_bits(bits);
    let _ = train(&mut net, &ds, &TrainConfig::fast(2));
    let int_net = convert(&net, scheme).expect("convertible");
    (net, int_net, ds)
}

#[test]
fn converted_flash_matches_table1_memory_model_pc_icn() {
    // The memory model predicts the converted network's actual bytes for
    // PC+ICN exactly (same datatypes, same packing).
    let (net, int_net, _) = trained(QuantScheme::PerChannelIcn, BitWidth::W4);
    let spec = network_spec_of(&net, "consistency");
    let mut weight_bits = vec![BitWidth::W4; spec.num_layers()];
    // Micro net uses uniform bits; the model takes per-layer anyway.
    weight_bits[spec.num_layers() - 1] = BitWidth::W4;
    let act_bits = vec![BitWidth::W8; spec.num_layers() + 1];
    let model_bytes = network_flash_footprint_with_acts(
        &spec,
        QuantScheme::PerChannelIcn,
        &weight_bits,
        &act_bits,
    );
    let actual = int_net.flash_bytes();
    assert_eq!(
        actual, model_bytes,
        "actual converted bytes must equal the Table-1 model"
    );
}

#[test]
fn converted_peak_ram_matches_memory_model() {
    let (net, int_net, _) = trained(QuantScheme::PerChannelIcn, BitWidth::W8);
    let spec = network_spec_of(&net, "consistency");
    let act_bits = vec![BitWidth::W8; spec.num_layers() + 1];
    let model_peak = peak_activation_bytes(&spec, &act_bits);
    let actual_peak = int_net.peak_ram_bytes();
    assert_eq!(actual_peak, model_peak, "Eq. 7 peaks must agree");
}

#[test]
fn gemm_paths_match_direct_on_converted_network() {
    // Run the first (standard) conv layer of a real converted network
    // through all three dataflows.
    let (_, int_net, ds) = trained(QuantScheme::PerChannelIcn, BitWidth::W4);
    for i in 0..4 {
        let x = int_net.quantize_input(&ds.sample(i).images);
        let layer = &int_net.layers()[0];
        assert!(!layer.weights().is_depthwise());
        let mut oa = OpCounts::default();
        let mut ob = OpCounts::default();
        let mut oc = OpCounts::default();
        let direct = layer.execute(&x, &mut oa);
        let gemm = layer.execute_gemm(&x, &mut ob);
        let blocked = layer.execute_blocked(&x, &mut oc);
        assert_eq!(direct, gemm, "sample {i}");
        assert_eq!(direct, blocked, "sample {i}");
        assert_eq!(ob, oc, "GEMM dataflow ledgers agree, sample {i}");
    }
}

#[test]
fn exported_header_accounts_for_flash_bytes() {
    let (_, int_net, _) = trained(QuantScheme::PerChannelIcn, BitWidth::W4);
    let header = emit_c_header(&int_net, "consistency");
    // Parse the declared array lengths back out of the header and compare
    // byte totals with flash_bytes().
    let mut total = 0usize;
    for line in header.lines() {
        let Some(rest) = line.strip_prefix("static const ") else {
            continue;
        };
        let elem_bytes = if rest.starts_with("uint8_t") || rest.starts_with("int8_t") {
            1
        } else if rest.starts_with("int16_t") || rest.starts_with("uint16_t") {
            2
        } else if rest.starts_with("int32_t") {
            4
        } else {
            continue;
        };
        if let Some(open) = rest.find('[') {
            let close = rest[open..].find(']').map(|c| open + c);
            if let Some(close) = close {
                let n: usize = rest[open + 1..close].parse().unwrap_or(0);
                total += n * elem_bytes;
            }
        } else if rest.contains('=') {
            // Scalar declaration.
            total += elem_bytes;
        }
    }
    // The header also emits the scalar thr_per_ch helper for thresholds
    // (absent here) and nothing else beyond the accounted parameters.
    assert_eq!(
        total,
        int_net.flash_bytes(),
        "header arrays must account for exactly the flash footprint"
    );
}

#[test]
fn integer_kernel_macs_match_analytic_spec_on_mobilenet_topology() {
    // Build the paper's exact MobileNetV1 topology at reduced scale, run
    // integer inference layer by layer, and reconcile the kernels' counted
    // MACs with the shape-level analytic model that drives Figures 2–3:
    // pointwise (1×1) layers must match *exactly*; 3×3 SAME layers may
    // undercount only by the padded border taps.
    use mixq::models::micro::mobilenet_like;
    let spec = mobilenet_like(32, 2, 16, 4);
    let ds = DatasetSpec::new(SyntheticKind::Gratings, 32, 32, 2, 4)
        .with_samples(4)
        .generate(5);
    let mut net = QatNetwork::build(&spec, 3);
    net.calibrate_input(ds.images());
    net.enable_fake_quant(scheme_granularity(QuantScheme::PerChannelIcn));
    let int_net = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
    let ns = network_spec_of(&net, "mini-mobilenet");
    // Exact expected MACs of the direct kernel: per output pixel, only the
    // in-bounds taps of the SAME-padded window multiply.
    fn direct_macs(l: &mixq::models::LayerSpec) -> u64 {
        let k = l.kernel();
        let s = l.stride();
        let (h, w) = (l.in_h() as isize, l.in_w() as isize);
        let pad = {
            // TF SAME: total pad = (out-1)*s + k - in, split top/left = pad/2.
            let pad_h = ((l.out_h() as isize - 1) * s as isize + k as isize - h).max(0);
            let pad_w = ((l.out_w() as isize - 1) * s as isize + k as isize - w).max(0);
            (pad_h / 2, pad_w / 2)
        };
        let per_tap = match l.kind() {
            mixq::models::LayerKind::Conv => l.in_channels() as u64,
            mixq::models::LayerKind::DepthwiseConv => 1,
            mixq::models::LayerKind::Linear => return l.macs() as u64,
        };
        let mut taps = 0u64;
        for oy in 0..l.out_h() {
            for ox in 0..l.out_w() {
                for ky in 0..k {
                    let iy = (oy * s + ky) as isize - pad.0;
                    if iy < 0 || iy >= h {
                        continue;
                    }
                    for kx in 0..k {
                        let ix = (ox * s + kx) as isize - pad.1;
                        if ix >= 0 && ix < w {
                            taps += 1;
                        }
                    }
                }
            }
        }
        taps * per_tap * l.out_channels() as u64
    }

    let mut x = int_net.quantize_input(&ds.sample(0).images);
    let mut total_counted = 0u64;
    let mut total_analytic = 0u64;
    for (layer, lspec) in int_net.layers().iter().zip(ns.layers()) {
        let mut ops = OpCounts::default();
        let y = layer.execute(&x, &mut ops);
        let analytic = lspec.macs() as u64;
        assert_eq!(
            ops.macs,
            direct_macs(lspec),
            "{}: counted MACs must equal the exact valid-tap count",
            lspec.name()
        );
        if lspec.kernel() == 1 {
            assert_eq!(ops.macs, analytic, "{}: 1x1 has no padding", lspec.name());
        } else {
            assert!(ops.macs <= analytic, "{}", lspec.name());
        }
        total_counted += ops.macs;
        total_analytic += analytic;
        x = y;
    }
    // Network-level agreement: the analytic model over-counts only the
    // padded border taps.
    let ratio = total_counted as f64 / total_analytic as f64;
    assert!(
        (0.75..=1.0).contains(&ratio),
        "counted/analytic = {ratio:.4}"
    );
}

#[test]
fn infer_and_evaluate_agree() {
    let (_, int_net, ds) = trained(QuantScheme::PerChannelIcn, BitWidth::W8);
    let (acc, _) = int_net.evaluate(&ds);
    let manual = (0..ds.len())
        .filter(|&i| int_net.predict(&ds.sample(i).images) == ds.labels()[i])
        .count() as f32
        / ds.len() as f32;
    assert!((acc - manual).abs() < 1e-6);
}

#[test]
fn modeled_cycles_invariant_under_host_execution_settings() {
    // The Cortex-M7 cycle model prices the *abstract* ledger (MACs,
    // unpacks, requants...), never the host dataflow — so the modeled
    // deployment latency of one walk must come out identical whether the
    // host ran forced-scalar, auto-detected SIMD, or an intra-walk worker
    // pool. `simd_lanes` stays at its default 1.0 (single-issue scalar
    // MCU), an exact identity on the MAC term.
    use mixq::core::convert::convert_with_backend;
    use mixq::kernels::{simd, ActivationArena, SimdLevel, ThreadPool, TiledBackend};
    use mixq::mcu::CortexM7CycleModel;
    use std::sync::Arc;

    let ds = dataset();
    let spec = MicroCnnSpec::new(8, 8, 2, 3, &[6, 8]);
    let mut net = QatNetwork::build(&spec, 23);
    net.calibrate_input(ds.images());
    net.enable_fake_quant(scheme_granularity(QuantScheme::PerChannelIcn));
    let int_net = convert_with_backend(&net, QuantScheme::PerChannelIcn, &TiledBackend::default())
        .expect("convertible");

    let walk = |forced: Option<SimdLevel>, threads: usize| -> (Vec<i32>, OpCounts) {
        simd::set_forced(forced);
        let mut arena = ActivationArena::new();
        if threads > 1 {
            arena.set_pool(Arc::new(ThreadPool::new(threads)));
        }
        let mut logits = Vec::new();
        let mut ops = OpCounts::default();
        let x = int_net.quantize_input_items_pooled(ds.images(), 0, 4, &mut arena);
        int_net
            .graph()
            .infer_batch(x, &mut arena, &mut logits, &mut ops);
        simd::set_forced(None);
        (logits, ops)
    };

    let model = CortexM7CycleModel::default();
    assert_eq!(model.simd_lanes, 1.0, "MCU model defaults to scalar issue");
    let (base_logits, base_ops) = walk(Some(SimdLevel::Scalar), 1);
    let base_cycles = model.cycles_from_counts(&base_ops);
    assert!(base_cycles > 0);
    // Sweep every SIMD level the host can express (each one routes the
    // blocked GEMM through the vectorized requantization epilogue and the
    // SIMD sub-byte pack/unpack) plus threaded variants: codes, ledger and
    // modeled cycles must never move.
    let mut settings: Vec<(Option<SimdLevel>, usize)> =
        vec![(None, 1), (Some(SimdLevel::Scalar), 2), (None, 4)];
    for level in [SimdLevel::Sse2, SimdLevel::Avx2, SimdLevel::Neon] {
        if level.available() {
            settings.push((Some(level), 1));
            settings.push((Some(level), 2));
        }
    }
    for (forced, threads) in settings {
        let (logits, ops) = walk(forced, threads);
        assert_eq!(logits, base_logits, "{forced:?}/{threads}T logits");
        assert_eq!(ops, base_ops, "{forced:?}/{threads}T ledger");
        assert_eq!(
            model.cycles_from_counts(&ops),
            base_cycles,
            "{forced:?}/{threads}T modeled cycles"
        );
    }
    // A hypothetical vector MCU (`simd_lanes` > 1) scales only the MAC
    // term; everything else in the estimate is untouched.
    let vector_mcu = CortexM7CycleModel {
        simd_lanes: 2.0,
        ..CortexM7CycleModel::default()
    };
    let zero_mac = OpCounts {
        macs: 0,
        ..base_ops
    };
    let non_mac = model.cycles_from_counts(&zero_mac);
    assert_eq!(vector_mcu.cycles_from_counts(&zero_mac), non_mac);
    let halved = vector_mcu.cycles_from_counts(&base_ops) - non_mac;
    let full = base_cycles - non_mac;
    assert!(
        (halved as i64 - (full / 2) as i64).abs() <= 1,
        "two lanes halve the MAC term: {halved} vs {full}/2"
    );
}
