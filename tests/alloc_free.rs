//! Arena-aware packing acceptance: after a warm-up pass, steady-state
//! integer inference through the pooled path (`quantize_input_pooled` +
//! `QGraph::infer_pooled`) performs **zero heap allocations** — every code
//! scratch, packed activation and logits buffer is recycled. The same
//! guarantee is asserted at **batch > 1** (`quantize_input_items_pooled` +
//! `QGraph::infer_batch`) and for the **tiled backend**, whose
//! blocked-GEMM nodes stream their prepacked weight panels and draw the
//! im2col expansion from the arena's auxiliary scratch.
//!
//! This file installs a counting global allocator, so it deliberately
//! contains a single test (parallel tests in the same binary would pollute
//! the counter).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use std::sync::Arc;

use mixq::core::convert::{convert, convert_with_backend, IntNetwork};
use mixq::core::memory::QuantScheme;
use mixq::data::{DatasetSpec, SyntheticKind};
use mixq::kernels::{ActivationArena, OpCounts, ThreadPool, TiledBackend};
use mixq::nn::qat::{MicroCnnSpec, QatNetwork};
use mixq::quant::Granularity;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every call to `System`, which upholds the `GlobalAlloc`
// contract; the atomic counter bump has no effect on allocation semantics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_inference_is_allocation_free() {
    // Build a depthwise-separable micro network with a residual skip, so
    // the pooled path covers conv, depthwise, add, pool and head nodes.
    // (Setup may allocate freely; only the steady state is measured.)
    let spec = {
        use mixq::nn::qat::BlockSpec;
        use mixq::nn::ConvKind;
        let std_block = |c: usize, kernel: usize| BlockSpec {
            out_channels: c,
            stride: 1,
            kind: ConvKind::Standard,
            kernel,
        };
        let dw_block = |c: usize| BlockSpec {
            out_channels: c,
            stride: 1,
            kind: ConvKind::Depthwise,
            kernel: 3,
        };
        MicroCnnSpec::new(8, 8, 2, 3, &[4])
            .with_blocks(vec![std_block(4, 3), dw_block(4), std_block(4, 1)])
            .with_residual(0, 2)
    };
    let ds = DatasetSpec::new(SyntheticKind::Bars, 8, 8, 2, 3)
        .with_samples(4)
        .generate(7);
    let mut net = QatNetwork::build(&spec, 13);
    net.calibrate_input(ds.images());
    net.enable_fake_quant(Granularity::PerChannel);
    let int_net = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
    let image = ds.sample(0).images.clone();

    let mut arena = ActivationArena::new();
    let mut logits = Vec::new();
    let mut ops = OpCounts::default();
    // Warm-up: buffers are created and grown to their steady capacities.
    for _ in 0..2 {
        let x = int_net.quantize_input_pooled(&image, &mut arena);
        int_net
            .graph()
            .infer_pooled(x, &mut arena, &mut logits, &mut ops);
    }
    let warm_logits = logits.clone();

    // The counter is process-global, and the libtest harness's own thread
    // occasionally allocates concurrently with the measured window. A real
    // steady-state allocation would fire on *every* attempt, so retrying a
    // few times filters the harness noise without weakening the assertion.
    let mut leaked = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..8 {
            let x = int_net.quantize_input_pooled(&image, &mut arena);
            int_net
                .graph()
                .infer_pooled(x, &mut arena, &mut logits, &mut ops);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        leaked = leaked.min(after - before);
        if leaked == 0 {
            break;
        }
    }
    assert_eq!(leaked, 0, "steady-state inference must not touch the heap");
    // And it still computes the same thing.
    assert_eq!(logits, warm_logits);

    // Batch > 1 through the same graph: one walk per 4 samples, all
    // buffers batch-scaled at warm-up and recycled thereafter. The first
    // logits row must reproduce the single-sample result exactly.
    let classes = int_net.linear().out_features();
    let batched_steady = measure_batched(&int_net, ds.images(), 4);
    assert_eq!(
        batched_steady.0, 0,
        "steady-state batch-4 inference must not touch the heap"
    );
    assert_eq!(&batched_steady.1[..classes], &warm_logits[..]);

    // The tiled backend's blocked-GEMM nodes stream their prepacked
    // panels and draw the im2col expansion from the arena's auxiliary
    // scratch — allocation-free at batch > 1 too, with identical logits.
    let tiled_net =
        convert_with_backend(&net, QuantScheme::PerChannelIcn, &TiledBackend::default())
            .expect("convertible");
    assert!(
        tiled_net.prepacked_bytes() > 0,
        "tiled conversion prepacks weight panels"
    );
    let tiled_steady = measure_batched(&tiled_net, ds.images(), 4);
    assert_eq!(
        tiled_steady.0, 0,
        "steady-state prepacked blocked inference must not touch the heap"
    );
    assert_eq!(
        tiled_steady.1, batched_steady.1,
        "backends are bit-identical"
    );

    // Intra-walk parallelism: with a worker pool attached to the arena
    // (created once in setup, reused every walk), the split broadcasts,
    // per-worker accumulator slices and ledger merges must stay off the
    // heap too — and the logits bit-identical to every serial path.
    let pooled_steady = measure_batched_threads(&tiled_net, ds.images(), 4, 2);
    assert_eq!(
        pooled_steady.0, 0,
        "steady-state intra-walk-parallel inference must not touch the heap"
    );
    assert_eq!(
        pooled_steady.1, batched_steady.1,
        "threaded walk is bit-identical"
    );
}

/// Warm-up then measured batched steady state: returns the minimum
/// allocation count observed over the retry window and the final logits.
fn measure_batched(
    net: &IntNetwork,
    images: &mixq::tensor::Tensor<f32>,
    batch: usize,
) -> (u64, Vec<i32>) {
    measure_batched_threads(net, images, batch, 1)
}

/// [`measure_batched`] with an intra-walk [`ThreadPool`] of `threads`
/// workers attached before warm-up (`1` = serial, no pool).
fn measure_batched_threads(
    net: &IntNetwork,
    images: &mixq::tensor::Tensor<f32>,
    batch: usize,
    threads: usize,
) -> (u64, Vec<i32>) {
    let mut arena = ActivationArena::new();
    if threads > 1 {
        arena.set_pool(Arc::new(ThreadPool::new(threads)));
    }
    let mut logits = Vec::new();
    let mut ops = OpCounts::default();
    for _ in 0..2 {
        let x = net.quantize_input_items_pooled(images, 0, batch, &mut arena);
        net.graph()
            .infer_batch(x, &mut arena, &mut logits, &mut ops);
    }
    let mut leaked = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..8 {
            let x = net.quantize_input_items_pooled(images, 0, batch, &mut arena);
            net.graph()
                .infer_batch(x, &mut arena, &mut logits, &mut ops);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        leaked = leaked.min(after - before);
        if leaked == 0 {
            break;
        }
    }
    (leaked, logits)
}
