//! Paper-anchor integration tests on the MobileNetV1 grid: the §6 claims
//! that are exactly computable at shape level (footprints, bit
//! assignments, latency trends) — the quantitative backbone of Tables 2–3
//! and Figures 2–3.

use mixq::core::memory::{
    mib, network_flash_footprint, network_flash_footprint_with_acts, MemoryBudget, QuantScheme,
};
use mixq::core::mixed::{
    assign_bits, cut_activation_bits, hybrid_pl_flash_bytes, BitAssignment, MixedPrecisionConfig,
};
use mixq::mcu::{CortexM7CycleModel, Device};
use mixq::models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
use mixq::quant::BitWidth;

#[test]
fn table2_footprint_column_reproduces() {
    let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
    let l = spec.num_layers();
    let w4 = vec![BitWidth::W4; l];
    let w8 = vec![BitWidth::W8; l];
    let a8 = vec![BitWidth::W8; l + 1];
    let a4 = vec![BitWidth::W4; l + 1];
    // Paper Table 2 (MiB): 4.06 / 2.05 / 2.10 / 2.12 / 2.35.
    let rows = [
        (
            network_flash_footprint(&spec, QuantScheme::PerLayerFolded, &w8),
            4.06,
            0.03,
        ),
        (
            network_flash_footprint_with_acts(&spec, QuantScheme::PerLayerFolded, &w4, &a8),
            2.05,
            0.02,
        ),
        (
            network_flash_footprint_with_acts(&spec, QuantScheme::PerLayerIcn, &w4, &a8),
            2.10,
            0.02,
        ),
        (
            network_flash_footprint_with_acts(&spec, QuantScheme::PerChannelIcn, &w4, &a8),
            2.12,
            0.02,
        ),
        (
            network_flash_footprint_with_acts(&spec, QuantScheme::PerChannelThresholds, &w4, &a4),
            2.35,
            0.04,
        ),
    ];
    for (i, (bytes, expected, tol)) in rows.iter().enumerate() {
        let got = mib(*bytes);
        assert!(
            (got - expected).abs() < *tol,
            "row {i}: got {got:.3} MiB, paper reports {expected}"
        );
    }
}

#[test]
fn figure3_cut_structure_across_the_grid() {
    // Appendix Figure 3 structure at M_RO = 2 MB, M_RW = 512 kB:
    // width 0.25/0.5 → no cuts (except 224_0.5's one activation);
    // width 0.75 → weight cuts on the heavy tail (pw13 + fc);
    // width 1.0 → weight cuts spread over the 512-channel pointwise block.
    let budget = MemoryBudget::stm32h7();
    for cfg_m in MobileNetConfig::all() {
        let spec = cfg_m.build();
        let cfg = MixedPrecisionConfig::new(budget, QuantScheme::PerChannelIcn);
        let a = assign_bits(&spec, &cfg).expect("feasible");
        let w_cut: Vec<&str> = spec
            .layers()
            .iter()
            .zip(&a.weight_bits)
            .filter(|(_, &b)| b != BitWidth::W8)
            .map(|(l, _)| l.name())
            .collect();
        match cfg_m.width() {
            WidthMultiplier::X0_25 => {
                assert!(w_cut.is_empty(), "{}: {w_cut:?}", cfg_m.label())
            }
            WidthMultiplier::X0_5 => {
                assert!(w_cut.is_empty(), "{}: {w_cut:?}", cfg_m.label());
                let a_cuts = a.act_bits.iter().filter(|&&b| b != BitWidth::W8).count();
                if cfg_m.resolution() == Resolution::R224 {
                    assert_eq!(a_cuts, 1, "{} cuts pw1's output", cfg_m.label());
                } else {
                    assert_eq!(a_cuts, 0, "{}", cfg_m.label());
                }
            }
            WidthMultiplier::X0_75 => {
                assert_eq!(
                    w_cut,
                    vec!["pw13", "fc"],
                    "{} cuts the heavy tail",
                    cfg_m.label()
                );
            }
            WidthMultiplier::X1_0 => {
                assert!(
                    w_cut.len() >= 5,
                    "{} needs many cuts: {w_cut:?}",
                    cfg_m.label()
                );
                // The central 512-channel pointwise block is the target.
                assert!(w_cut.contains(&"pw7"), "{}: {w_cut:?}", cfg_m.label());
            }
        }
        assert!(a.satisfies(&spec, &cfg), "{}", cfg_m.label());
    }
}

#[test]
fn table3_row2_anchor_192_05_at_1mb_256kb() {
    // §6 text + Table 3: 192_0.5 under 1 MB + 256 kB → Q1y,Q2y,Q5y = 4 and
    // 4-bit weights on pw13 and fc.
    let spec = MobileNetConfig::new(Resolution::R192, WidthMultiplier::X0_5).build();
    let cfg = MixedPrecisionConfig::new(
        MemoryBudget::one_megabyte_small_ram(),
        QuantScheme::PerChannelIcn,
    );
    let a = assign_bits(&spec, &cfg).expect("feasible");
    assert_eq!(a.act_bits[2], BitWidth::W4, "Q1y");
    assert_eq!(a.act_bits[3], BitWidth::W4, "Q2y");
    assert_eq!(a.act_bits[6], BitWidth::W4, "Q5y");
    assert_eq!(
        a.act_bits.iter().filter(|&&b| b != BitWidth::W8).count(),
        3,
        "exactly three activation cuts"
    );
    let fc = spec.num_layers() - 1;
    assert_eq!(a.weight_bits[fc], BitWidth::W4, "fc at 4 bits");
    assert_eq!(a.weight_bits[fc - 1], BitWidth::W4, "pw13 at 4 bits");
}

#[test]
fn table3_row1_anchor_224_05_at_1mb_512kb() {
    // Table 3 row 1: 224_0.5 fits 1 MB RO + 512 kB RW after cuts.
    let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X0_5).build();
    let cfg = MixedPrecisionConfig::new(MemoryBudget::one_megabyte(), QuantScheme::PerChannelIcn);
    let a = assign_bits(&spec, &cfg).expect("feasible");
    assert!(a.satisfies(&spec, &cfg));
    assert!(a.has_cuts());
}

#[test]
fn figure2_fps_span_and_ordering() {
    // Figure 2's latency axis: ≈10 fps for 128_0.25 MixQ-PL down to
    // ≈0.5 fps for 224_0.75 PC+ICN (§6 quotes 20×), with latency
    // monotonically increasing in resolution at fixed width.
    let device = Device::stm32h7();
    let model = CortexM7CycleModel::default();
    let mut fps_by_label = std::collections::HashMap::new();
    for cfg_m in MobileNetConfig::all() {
        let spec = cfg_m.build();
        let cfg = MixedPrecisionConfig::new(device.budget(), QuantScheme::PerChannelIcn);
        let a = assign_bits(&spec, &cfg).expect("feasible");
        let cycles = model.network_cycles(&spec, &a, QuantScheme::PerChannelIcn);
        fps_by_label.insert(cfg_m.label(), device.fps(cycles));
    }
    // MixQ-PL fastest point.
    let fast_spec = MobileNetConfig::new(Resolution::R128, WidthMultiplier::X0_25).build();
    let fast_cycles = model.network_cycles(
        &fast_spec,
        &BitAssignment::uniform8(&fast_spec),
        QuantScheme::PerLayerFolded,
    );
    let fast_fps = device.fps(fast_cycles);
    assert!(
        (7.0..14.0).contains(&fast_fps),
        "fastest ≈10 fps: {fast_fps}"
    );
    let slow_fps = fps_by_label["224_0.75"];
    let ratio = fast_fps / slow_fps;
    assert!((14.0..32.0).contains(&ratio), "≈20x span, got {ratio:.1}");
    // Latency grows with resolution at fixed width.
    for w in ["0.25", "0.5", "0.75", "1.0"] {
        let series: Vec<f64> = ["128", "160", "192", "224"]
            .iter()
            .map(|r| fps_by_label[&format!("{r}_{w}")])
            .collect();
        for pair in series.windows(2) {
            assert!(
                pair[0] > pair[1],
                "width {w}: fps must fall with resolution ({series:?})"
            );
        }
    }
}

#[test]
fn figure2_pc_icn_latency_overhead_about_20_percent() {
    let model = CortexM7CycleModel::default();
    for cfg_m in [
        MobileNetConfig::new(Resolution::R128, WidthMultiplier::X0_25),
        MobileNetConfig::new(Resolution::R192, WidthMultiplier::X0_5),
        MobileNetConfig::new(Resolution::R224, WidthMultiplier::X0_75),
    ] {
        let spec = cfg_m.build();
        let bits = BitAssignment::uniform8(&spec);
        let pl = model.network_cycles(&spec, &bits, QuantScheme::PerLayerIcn);
        let pc = model.network_cycles(&spec, &bits, QuantScheme::PerChannelIcn);
        let overhead = pc as f64 / pl as f64 - 1.0;
        assert!(
            (0.08..0.30).contains(&overhead),
            "{}: PC overhead {:.0}%",
            cfg_m.label(),
            overhead * 100.0
        );
    }
}

#[test]
fn hybrid_mixq_pl_footprint_never_exceeds_pure_icn() {
    // MixQ-PL uses folding on 8-bit layers and ICN only where cut (§6):
    // its footprint is bounded by the pure PL+ICN deployment.
    for cfg_m in MobileNetConfig::all() {
        let spec = cfg_m.build();
        let cfg = MixedPrecisionConfig::new(MemoryBudget::stm32h7(), QuantScheme::PerLayerIcn);
        let a = assign_bits(&spec, &cfg).expect("feasible");
        let hybrid = hybrid_pl_flash_bytes(&spec, &a);
        let pure = a.flash_bytes(&spec, QuantScheme::PerLayerIcn);
        assert!(hybrid <= pure, "{}", cfg_m.label());
    }
}

#[test]
fn activation_cuts_move_upstream_with_resolution() {
    // Higher resolution puts more early pairs over budget: the number of
    // cut activation tensors is non-decreasing in resolution (width 1.0).
    let budget = MemoryBudget::stm32h7();
    let mut cuts = Vec::new();
    for r in Resolution::ALL {
        let spec = MobileNetConfig::new(r, WidthMultiplier::X1_0).build();
        let cfg = MixedPrecisionConfig::new(budget, QuantScheme::PerChannelIcn);
        let (act, _) = cut_activation_bits(&spec, &cfg).expect("feasible");
        cuts.push(act.iter().filter(|&&b| b != BitWidth::W8).count());
    }
    for pair in cuts.windows(2) {
        assert!(pair[0] <= pair[1], "cuts {cuts:?} must be non-decreasing");
    }
}
