//! Cross-crate integration tests: the full Figure-1 deployment flow, the
//! Table-2 accuracy shape on synthetic data, and the lossless-conversion
//! claims of §4.

use mixq::core::convert::{convert, scheme_granularity};
use mixq::core::memory::{MemoryBudget, QuantScheme};
use mixq::core::pipeline::{deploy, PipelineConfig};
use mixq::data::{Dataset, DatasetSpec, SyntheticKind};
use mixq::models::micro::{folding_stress_cnn, quickstart_cnn};
use mixq::nn::qat::QatNetwork;
use mixq::nn::train::{evaluate, train, TrainConfig};
use mixq::quant::BitWidth;

fn stress_dataset() -> Dataset {
    DatasetSpec::new(SyntheticKind::ChannelBits, 12, 12, 2, 4)
        .with_samples(256)
        .with_noise(0.06)
        .with_amplitude_base(40.0)
        .generate(11)
}

/// Trains the folding-stress CNN under one scheme at the given weight
/// precision and returns (fake-quant train accuracy, integer test accuracy).
fn run_scheme(
    train_set: &Dataset,
    test_set: &Dataset,
    scheme: QuantScheme,
    bits: BitWidth,
    seed: u64,
) -> (f32, f32) {
    let spec = folding_stress_cnn(2, 4);
    let mut net = QatNetwork::build(&spec, seed);
    let _ = train(&mut net, train_set, &TrainConfig::fast(12));
    net.calibrate_input(train_set.images());
    net.enable_fake_quant(scheme_granularity(scheme));
    for i in 0..net.num_blocks() {
        net.set_weight_bits(i, bits);
    }
    net.set_linear_weight_bits(bits);
    let qat_cfg = if scheme == QuantScheme::PerLayerFolded {
        TrainConfig::fast(8).with_folding_from(1)
    } else {
        TrainConfig::fast(8)
    };
    let _ = train(&mut net, train_set, &qat_cfg);
    let fq = evaluate(&net, train_set);
    let int_net = convert(&net, scheme).expect("convertible");
    let (int_acc, _) = int_net.evaluate(test_set);
    (fq, int_acc)
}

#[test]
fn table2_shape_pl_fb_collapses_at_int4_but_icn_survives() {
    // The paper's central Table-2 result, at micro scale: folding the
    // batch-norm into per-layer INT4 weights destroys training, while the
    // ICN formulation keeps both granularities accurate.
    let ds = stress_dataset();
    let split = ds.split(0.8, 3);
    let (fb4, fb4_int) = run_scheme(
        &split.train,
        &split.test,
        QuantScheme::PerLayerFolded,
        BitWidth::W4,
        4242,
    );
    let (pl_icn4, pl_icn4_int) = run_scheme(
        &split.train,
        &split.test,
        QuantScheme::PerLayerIcn,
        BitWidth::W4,
        4242,
    );
    let (pc_icn4, pc_icn4_int) = run_scheme(
        &split.train,
        &split.test,
        QuantScheme::PerChannelIcn,
        BitWidth::W4,
        4242,
    );
    assert!(
        fb4 < pl_icn4 - 0.2,
        "PL+FB INT4 ({fb4}) must collapse relative to PL+ICN ({pl_icn4})"
    );
    assert!(
        pc_icn4 >= pl_icn4 - 0.05,
        "PC+ICN ({pc_icn4}) must be at least PL+ICN ({pl_icn4})"
    );
    assert!(pl_icn4_int > 0.85, "PL+ICN INT4 integer model works");
    assert!(pc_icn4_int > 0.85, "PC+ICN INT4 integer model works");
    assert!(
        fb4_int < 0.75,
        "collapsed training stays collapsed deployed"
    );
}

#[test]
fn table2_shape_pl_fb_works_at_int8() {
    let ds = stress_dataset();
    let split = ds.split(0.8, 3);
    let (fb8, fb8_int) = run_scheme(
        &split.train,
        &split.test,
        QuantScheme::PerLayerFolded,
        BitWidth::W8,
        4242,
    );
    assert!(fb8 > 0.9, "PL+FB INT8 trains fine ({fb8})");
    assert!(fb8_int > 0.85, "PL+FB INT8 deploys fine ({fb8_int})");
}

#[test]
fn thresholds_conversion_is_as_good_as_icn() {
    // Table 2: PC+Thresholds (66.46%) edges PC+ICN (66.41%) because the
    // threshold tables are exact while ICN rounds M0 to Q31. At micro scale
    // we assert it is at least as accurate.
    let ds = stress_dataset();
    let split = ds.split(0.8, 3);
    let (_, icn) = run_scheme(
        &split.train,
        &split.test,
        QuantScheme::PerChannelIcn,
        BitWidth::W4,
        7,
    );
    let (_, thr) = run_scheme(
        &split.train,
        &split.test,
        QuantScheme::PerChannelThresholds,
        BitWidth::W4,
        7,
    );
    assert!(
        thr >= icn - 0.03,
        "thresholds ({thr}) must track ICN ({icn})"
    );
}

#[test]
fn deploy_pipeline_end_to_end_with_budget() {
    let ds = DatasetSpec::new(SyntheticKind::Bars, 8, 8, 1, 4)
        .with_samples(192)
        .with_noise(0.04)
        .generate(19);
    let split = ds.split(0.8, 2);
    let spec = quickstart_cnn(4);
    // Probe the 8-bit footprint, then budget at 60% of it to force cuts.
    let probe = QatNetwork::build(&spec, 1);
    let ns = mixq::models::micro::network_spec_of(&probe, "probe");
    let full8 = mixq::core::memory::network_flash_footprint(
        &ns,
        QuantScheme::PerChannelIcn,
        &vec![BitWidth::W8; ns.num_layers()],
    );
    let cfg = PipelineConfig::new(QuantScheme::PerChannelIcn)
        .with_budget(MemoryBudget::new(full8 * 3 / 5, 64 * 1024))
        .with_seed(5);
    let (int_net, report) = deploy(&spec, &split.train, &cfg).expect("pipeline");
    assert!(report.assignment.as_ref().unwrap().has_cuts());
    assert!(report.flash_bytes <= full8 * 3 / 5, "fits the budget");
    assert_eq!(report.fits_budget, Some(true));
    // Mixed-precision QAT still learns the task and deploys faithfully.
    assert!(
        report.fake_quant_accuracy > 0.8,
        "{}",
        report.fake_quant_accuracy
    );
    let (test_acc, _) = int_net.evaluate(&split.test);
    assert!(test_acc > 0.7, "integer test accuracy {test_acc}");
    assert!(report.prediction_agreement > 0.85);
}

#[test]
fn integer_model_is_deterministic() {
    let ds = stress_dataset();
    let split = ds.split(0.8, 3);
    let spec = folding_stress_cnn(2, 4);
    let mut net = QatNetwork::build(&spec, 9);
    let _ = train(&mut net, &split.train, &TrainConfig::fast(6));
    net.calibrate_input(split.train.images());
    net.enable_fake_quant(mixq::quant::Granularity::PerChannel);
    let int_net = convert(&net, QuantScheme::PerChannelIcn).expect("convertible");
    let img = &split.test.sample(0).images;
    let (a, ops_a) = int_net.infer(img);
    let (b, ops_b) = int_net.infer(img);
    assert_eq!(a, b, "integer inference is bit-exact and reproducible");
    assert_eq!(ops_a, ops_b, "op counts are deterministic");
}
