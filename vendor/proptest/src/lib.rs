//! Offline subset of the `proptest` crate API used by this workspace
//! (see `vendor/README.md`).
//!
//! Provides the `proptest!` test macro, the strategy combinators the test
//! suite uses (numeric ranges, [`Just`], `prop_oneof!`, `collection::vec`,
//! `any::<bool>()`), and the `prop_assert*` / `prop_assume!` macros.
//! Differences from the real crate: cases are drawn from one fixed
//! deterministic seed (reproducible by construction) and there is **no
//! shrinking** — a failure reports the generated values verbatim.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SampleRange, SeedableRng};

/// How a strategy produces values.
///
/// Object-safe so `prop_oneof!` can erase heterogeneous strategy types
/// behind `Box<dyn Strategy<Value = T>>`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The deterministic generator driving a test run.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A fresh generator from the crate's fixed seed.
    pub fn deterministic() -> Self {
        TestRng(StdRng::seed_from_u64(0x5EED_CAFE_F00D_D00D))
    }

    /// Uniform sample from a range (helper for strategy impls).
    pub fn sample<R: SampleRange>(&mut self, range: R) -> R::Output {
        self.0.random_range(range)
    }

    /// Raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!` desugars here).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.sample(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Erases a strategy's concrete type (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.sample(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (what `prop_assert!` raises).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Outcome of one generated case: pass, fail, or rejected by
/// `prop_assume!`.
pub type CaseResult = Result<(), TestCaseError>;

/// Runs `cases` deterministic cases of `body`, panicking on the first
/// failure with the case index and message.
pub fn run_cases(cases: u32, mut body: impl FnMut(&mut TestRng) -> CaseResult) {
    let mut rng = TestRng::deterministic();
    for case in 0..cases {
        if let Err(TestCaseError(msg)) = body(&mut rng) {
            panic!("property failed at case {case}/{cases}: {msg}");
        }
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(config.cases, |rng| {
                    $( let $arg = $crate::Strategy::generate(&($strat), rng); )*
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name ( $( $arg in $strat ),* ) $body
            )*
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::boxed($strat) ),+ ])
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Silently discards the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_picks_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::deterministic();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::deterministic();
        let fixed = crate::collection::vec(0u8..=255, 16);
        assert_eq!(Strategy::generate(&fixed, &mut rng).len(), 16);
        let ranged = crate::collection::vec(0u8..=255, 0..200);
        for _ in 0..50 {
            assert!(Strategy::generate(&ranged, &mut rng).len() < 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in -10i32..10, flip in any::<bool>()) {
            prop_assume!(x != 0);
            let y = if flip { -x } else { x };
            prop_assert!(y != 0, "y must be nonzero, got {y}");
            prop_assert_eq!(y.abs(), x.abs());
        }
    }
}
