//! Offline, deterministic subset of the `rand` crate API used by this
//! workspace (see `vendor/README.md`).
//!
//! The generator is SplitMix64: statistically solid for simulation
//! workloads, trivially seedable, and — crucially for this repo — the same
//! seed produces the same stream on every platform and build, so every
//! synthetic dataset and weight initialization is reproducible.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling on top of any [`RngCore`] (the `rand 0.9` `Rng`
/// extension surface this workspace uses).
pub trait RngExt: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                // Guard the half-open contract against rounding up.
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-3i32..9);
            assert!((-3..9).contains(&v));
            let f = rng.random_range(0.25f32..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = rng.random_range(0usize..7);
            assert!(u < 7);
            let i = rng.random_range(0u8..=255);
            let _ = i; // full domain: any value is valid
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_half = 0;
        for _ in 0..1000 {
            if rng.random_range(0.0f32..1.0) < 0.5 {
                lo_half += 1;
            }
        }
        assert!((300..700).contains(&lo_half), "wildly skewed: {lo_half}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_dependent() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b = a.clone();
        let mut c = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(1));
        b.shuffle(&mut StdRng::seed_from_u64(1));
        c.shuffle(&mut StdRng::seed_from_u64(2));
        assert_eq!(a, b, "same seed, same permutation");
        assert_ne!(a, c, "different seed, different permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
