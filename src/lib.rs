//! # mixq — memory-driven mixed low-precision quantization for MCUs
//!
//! A Rust reproduction of *Rusci, Capotondi, Benini — "Memory-Driven Mixed
//! Low Precision Quantization For Enabling Deep Network Inference On
//! Microcontrollers"* (MLSys 2020).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — NHWC tensor substrate.
//! * [`quant`] — uniform affine quantization, observers, sub-byte packing,
//!   fixed-point decomposition (paper §3).
//! * [`nn`] — float + fake-quantized layers, backprop, Adam, QAT (paper Fig. 1).
//! * [`kernels`] — CMSIS-NN-style integer kernels with op counters.
//! * [`models`] — MobileNetV1 family specs + trainable micro-CNNs.
//! * [`core`] — ICN integer-only conversion, Table-1 memory model,
//!   Algorithms 1 & 2 (paper §4–§5, the primary contribution).
//! * [`mcu`] — STM32H7 device model and Cortex-M7 cycle model.
//! * [`data`] — synthetic datasets standing in for ImageNet.
//! * [`verify`] — static graph/kernel verifier: overflow interval
//!   analysis, arena-aliasing and requant-expressibility proofs.
//! * [`serve`] — fault-tolerant serving runtime: bounded admission,
//!   deadline-aware batching, panic-isolated workers, bit-width
//!   degradation under overload, deterministic fault injection.
//!
//! # Quickstart
//!
//! ```
//! use mixq::models::mobilenet::{MobileNetConfig, Resolution, WidthMultiplier};
//! use mixq::core::memory::{QuantScheme, network_flash_footprint};
//! use mixq::quant::BitWidth;
//!
//! let spec = MobileNetConfig::new(Resolution::R224, WidthMultiplier::X1_0).build();
//! let bytes = network_flash_footprint(&spec, QuantScheme::PerChannelIcn,
//!                                     &vec![BitWidth::W8; spec.num_layers()]);
//! assert!(bytes > 4_000_000); // ≈ 4.06 MiB at 8 bit (paper Table 2)
//! ```

pub use mixq_core as core;
pub use mixq_data as data;
pub use mixq_kernels as kernels;
pub use mixq_mcu as mcu;
pub use mixq_models as models;
pub use mixq_nn as nn;
pub use mixq_quant as quant;
pub use mixq_serve as serve;
pub use mixq_tensor as tensor;
pub use mixq_verify as verify;
